"""Unit tests for the repro.lint static dependence-declaration checker."""

import os
import textwrap

import pytest

from repro.lint import check_file, check_paths, check_source
from repro.lint.findings import Severity
from repro.lint.rules import (RACE_RULES, RULES, SANITIZER_RULES,
                              STATIC_RULES)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "lint_bad_chare.py")


def lint(body: str):
    return check_source(textwrap.dedent(body), filename="t.py")


def rule_ids(findings):
    return sorted(f.rule for f in findings)


class TestRuleCatalog:
    def test_rule_families_partition_the_catalog(self):
        families = (set(STATIC_RULES), set(SANITIZER_RULES), set(RACE_RULES))
        assert set().union(*families) == set(RULES)
        for i, a in enumerate(families):
            for b in families[i + 1:]:
                assert not a & b

    def test_every_rule_documented(self):
        for rule in RULES.values():
            assert rule.title and rule.description


class TestCleanDeclarations:
    def test_matching_declaration_is_clean(self):
        assert lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"], readwrite=["b"])
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.a, self.b],
                                           writes=[self.b])
        """) == []

    def test_non_chare_classes_are_ignored(self):
        assert lint("""
            class Helper:
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.zzz], writes=[])
        """) == []

    def test_transitive_chare_subclass_is_checked(self):
        findings = lint("""
            class Mid(Chare):
                pass

            class Leaf(Mid):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.b], writes=[])
        """)
        assert rule_ids(findings) == ["REP101", "REP104"]

    def test_stream_slice_idiom_resolves(self):
        """`[self.b, self.c][:n]` through a local is a may-use of both."""
        assert lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["b", "c"], writeonly=["a"])
                def go(self, n):
                    srcs = [self.b, self.c]
                    yield from self.kernel(flops=1, reads=srcs[:n],
                                           writes=[self.a])
        """) == []

    def test_spmv_concat_idiom_resolves(self):
        """`[self.A] + list(self.x_blocks)` resolves both operands."""
        assert lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["A", "x_blocks"],
                       writeonly=["y"])
                def go(self):
                    yield from self.kernel(
                        flops=1, reads=[self.A] + list(self.x_blocks),
                        writes=[self.y])
        """) == []

    def test_positional_kernel_arguments(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self.kernel(1.0, [self.a], [self.b])
        """)
        assert rule_ids(findings) == ["REP101"]


class TestStaticRules:
    def test_rep101_undeclared_dependence(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.a],
                                           writes=[self.b])
        """)
        assert rule_ids(findings) == ["REP101"]
        assert "self.b" in findings[0].message
        assert findings[0].severity is Severity.ERROR
        assert findings[0].chare == "C" and findings[0].entry == "go"

    def test_rep102_readonly_written(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self.kernel(flops=1, reads=[], writes=[self.a])
        """)
        assert rule_ids(findings) == ["REP102"]

    def test_rep102_writeonly_read(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, writeonly=["a"])
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.a],
                                           writes=[self.a])
        """)
        assert rule_ids(findings) == ["REP102"]

    def test_rep103_prefetch_without_deps(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True)
                def go(self):
                    yield
        """)
        assert rule_ids(findings) == ["REP103"]

    def test_rep104_dead_declaration_is_warning(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a", "b"])
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.a], writes=[])
        """)
        assert rule_ids(findings) == ["REP104"]
        assert findings[0].severity is Severity.WARNING

    def test_rep105_duplicate_intent(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"], readwrite=["a"])
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.a], writes=[])
        """)
        assert "REP105" in rule_ids(findings)

    def test_rep106_duplicate_block_name_across_methods(self):
        findings = lint("""
            class C(Chare):
                @entry
                def setup_a(self, msg):
                    self.a = self.declare_block("x", 64)

                @entry
                def setup_b(self, msg):
                    self.b = self.declare_block("x", 64)
        """)
        assert rule_ids(findings) == ["REP106"]

    def test_rep107_declare_in_prefetch_entry(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    self.c = self.declare_block("c", 64)
                    yield from self.kernel(flops=1, reads=[self.a], writes=[])
        """)
        assert rule_ids(findings) == ["REP107"]

    def test_rep108_kernel_outside_prefetch(self):
        findings = lint("""
            class C(Chare):
                @entry
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.a], writes=[])
        """)
        assert rule_ids(findings) == ["REP108"]
        assert findings[0].severity is Severity.WARNING

    def test_rep100_parse_error(self):
        findings = check_source("def broken(:\n", filename="bad.py")
        assert rule_ids(findings) == ["REP100"]

    def test_findings_render_with_anchor(self):
        findings = check_source(textwrap.dedent("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.a, self.b],
                                           writes=[])
        """), filename="app.py")
        rendered = findings[0].render()
        assert rendered.startswith("app.py:")
        assert "REP101" in rendered and "[C.go]" in rendered


class TestUnknownSuppression:
    def test_unresolvable_dep_list_suppresses_exactness_rules(self):
        """`readonly=NAMES` cannot be proven wrong; no REP101/REP104."""
        assert lint("""
            NAMES = ["a"]

            class C(Chare):
                @entry(prefetch=True, readonly=NAMES)
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.b], writes=[])
        """) == []

    def test_unresolvable_kernel_args_suppress_dead_rule(self):
        assert lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self.kernel(flops=1, reads=self.pick(),
                                           writes=[])
        """) == []

    def test_intent_mismatch_still_fires_on_resolved_part(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self.kernel(flops=1, reads=self.pick(),
                                           writes=[self.a])
        """)
        assert rule_ids(findings) == ["REP102"]


class TestEntryPoints:
    def test_fixture_file_trips_every_static_rule_once(self):
        findings = check_file(FIXTURE)
        assert rule_ids(findings) == [
            "REP101", "REP102", "REP103", "REP104",
            "REP105", "REP106", "REP107", "REP108"]
        for finding in findings:
            assert finding.file == FIXTURE
            assert finding.line > 0

    def test_check_paths_on_module_name(self):
        report = check_paths(["repro.apps.stencil3d"])
        assert report.ok()

    def test_check_paths_on_package_name(self):
        report = check_paths(["repro.apps"])
        assert report.ok()

    def test_check_paths_unknown_target(self):
        with pytest.raises(FileNotFoundError):
            check_paths(["no.such.module.anywhere"])

    def test_report_gate_semantics(self):
        report = check_paths([FIXTURE])
        assert not report.ok()
        assert not report.ok(strict=True)
        assert len(report.errors) == 6
        assert len(report.warnings) == 2
        assert [f.rule for f in report.by_rule("REP106")] == ["REP106"]
        assert "error(s)" in report.render()
