"""Tests for chare migration and measured-load rebalancing."""

import pytest

from repro.errors import ChareError, RuntimeModelError
from repro.machine.knl import build_knl
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.runtime.runtime import CharmRuntime
from repro.sim.environment import Environment
from repro.units import GiB


def make_runtime(cores=4):
    node = build_knl(Environment(), cores=cores, mcdram_capacity=GiB,
                     ddr_capacity=4 * GiB)
    return CharmRuntime(node)


class Skewed(Chare):
    @entry
    def burn(self, seconds, reducer):
        yield self.runtime.env.timeout(seconds)
        reducer.contribute()


class TestMigration:
    def test_migrate_routes_future_messages(self):
        rt = make_runtime()
        arr = rt.create_array(Skewed, 4)
        chare = arr[(0,)]
        original = chare.pe_id
        target = (original + 1) % len(rt.pes)
        rt.migrate(chare, target)
        red = rt.reducer(1)
        arr.send(0, "burn", 0.1, red)
        rt.run_until(red.done)
        assert rt.pes[target].tasks_executed == 1
        assert rt.pes[original].tasks_executed == 0

    def test_migrate_validates_pe(self):
        rt = make_runtime()
        arr = rt.create_array(Skewed, 1)
        with pytest.raises(RuntimeModelError):
            rt.migrate(arr[(0,)], 99)

    def test_migrate_foreign_chare_rejected(self):
        rt1, rt2 = make_runtime(), make_runtime()
        arr = rt1.create_array(Skewed, 1)
        with pytest.raises(ChareError):
            rt2.migrate(arr[(0,)], 0)


class TestRebalance:
    def test_measured_load_accumulates(self):
        rt = make_runtime(cores=1)
        arr = rt.create_array(Skewed, 2)
        red = rt.reducer(2)
        arr.send(0, "burn", 0.3, red)
        arr.send(1, "burn", 0.1, red)
        rt.run_until(red.done)
        assert arr[(0,)]._measured_load == pytest.approx(0.3, abs=1e-6)
        assert arr[(1,)]._measured_load == pytest.approx(0.1, abs=1e-6)

    def test_rebalance_reduces_imbalance(self):
        rt = make_runtime(cores=2)
        # 4 chares, round-robin puts (0,),(2,) on pe0 and (1,),(3,) on pe1;
        # make pe0's chares heavy
        arr = rt.create_array(Skewed, 4)
        red = rt.reducer(4)
        weights = {(0,): 1.0, (2,): 1.0, (1,): 0.1, (3,): 0.1}
        for idx, w in weights.items():
            arr.send(idx, "burn", w, red)
        rt.run_until(red.done)
        mapping = rt.rebalance(arr)
        # the two heavy chares must land on different PEs
        assert mapping[(0,)] != mapping[(2,)]
        # loads were reset
        assert all(c._measured_load == 0.0 for c in arr)

    def test_second_wave_after_rebalance_faster(self):
        rt = make_runtime(cores=2)
        arr = rt.create_array(Skewed, 4)
        weights = {(0,): 0.5, (2,): 0.5, (1,): 0.05, (3,): 0.05}
        red = rt.reducer(4)
        for idx, w in weights.items():
            arr.send(idx, "burn", w, red)
        rt.run_until(red.done)
        unbalanced_wave = rt.env.now
        rt.rebalance(arr)
        red2 = rt.reducer(4)
        start = rt.env.now
        for idx, w in weights.items():
            arr.send(idx, "burn", w, red2)
        rt.run_until(red2.done)
        balanced_wave = rt.env.now - start
        assert balanced_wave < unbalanced_wave
