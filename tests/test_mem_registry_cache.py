"""Unit + property tests for BlockRegistry and the cache-mode model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BlockStateError, ConfigError
from repro.machine.knl import build_knl
from repro.mem.block import BlockState, DataBlock
from repro.mem.cache import DirectMappedCache
from repro.sim.environment import Environment
from repro.units import GiB, KiB, MiB


@pytest.fixture
def node():
    return build_knl(Environment(), mcdram_capacity=GiB, ddr_capacity=4 * GiB)


class TestRegistry:
    def test_register_and_lookup(self, node):
        block = DataBlock("b", 100)
        node.registry.register(block)
        assert block in node.registry
        assert node.registry.get(block.bid) is block

    def test_double_register_rejected(self, node):
        block = DataBlock("b", 100)
        node.registry.register(block)
        with pytest.raises(BlockStateError):
            node.registry.register(block)

    def test_bytes_in_state(self, node):
        for i, dev in enumerate([node.hbm, node.hbm, node.ddr]):
            block = DataBlock(f"b{i}", 1000)
            node.registry.register(block)
            node.topology.place_block(block, dev)
        assert node.registry.bytes_in_state(BlockState.INHBM) == 2000
        assert node.registry.bytes_in_state(BlockState.INDDR) == 1000

    def test_evictable_excludes_in_use_and_pinned(self, node):
        free_b = DataBlock("free", 10)
        used_b = DataBlock("used", 10)
        pinned_b = DataBlock("pinned", 10)
        for b in (free_b, used_b, pinned_b):
            node.registry.register(b)
            node.topology.place_block(b, node.hbm)
        used_b.retain()
        pinned_b.pinned = True
        assert node.registry.evictable_blocks() == [free_b]

    def test_invariants_pass_on_clean_state(self, node):
        block = DataBlock("b", 100)
        node.registry.register(block)
        node.topology.place_block(block, node.hbm)
        node.registry.check_invariants()

    def test_invariants_catch_dangling_residency(self, node):
        block = DataBlock("b", 100)
        node.registry.register(block)
        node.topology.place_block(block, node.hbm)
        node.topology.release_block(block)  # state still says INHBM
        with pytest.raises(BlockStateError):
            node.registry.check_invariants()

    def test_resident_bytes_per_device(self, node):
        block = DataBlock("b", 512)
        node.registry.register(block)
        node.topology.place_block(block, node.ddr)
        assert node.registry.resident_bytes("ddr4") == 512
        assert node.registry.resident_bytes("mcdram") == 0


class TestDirectMappedCache:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            DirectMappedCache(0)
        with pytest.raises(ConfigError):
            DirectMappedCache(100, line_size=64)  # not a multiple

    def test_tiny_working_set_rarely_misses(self):
        cache = DirectMappedCache(16 * MiB)
        assert cache.miss_rate(64 * KiB, reuse_sweeps=1000) < 0.05

    def test_oversized_working_set_mostly_misses(self):
        cache = DirectMappedCache(16 * MiB)
        assert cache.miss_rate(160 * MiB) > 0.85

    def test_miss_rate_monotone_in_working_set(self):
        cache = DirectMappedCache(16 * MiB)
        rates = [cache.miss_rate(ws) for ws in
                 (MiB, 4 * MiB, 12 * MiB, 32 * MiB, 64 * MiB)]
        assert rates == sorted(rates)

    def test_conflicts_exist_even_when_fitting(self):
        """The paper's §I claim: caching suffers conflict misses."""
        cache = DirectMappedCache(16 * MiB)
        assert cache.conflict_fraction(12 * MiB) > 0.1
        # without zonesort-style page colouring it is far worse
        raw = DirectMappedCache(16 * MiB, page_coloring_quality=0.0)
        assert raw.conflict_fraction(12 * MiB) > 0.4
        # perfect colouring removes self-conflicts entirely
        ideal = DirectMappedCache(16 * MiB, page_coloring_quality=1.0)
        assert ideal.conflict_fraction(12 * MiB) == 0.0

    def test_effective_bandwidth_between_endpoints(self):
        cache = DirectMappedCache(16 * MiB, hit_bandwidth=400e9,
                                  miss_bandwidth=80e9)
        bw = cache.effective_bandwidth(8 * MiB)
        # above the miss floor (modulo the per-line occupancy penalty),
        # below the pure-hit ceiling
        assert 0.5 * 80e9 < bw < 400e9
        assert bw < cache.effective_bandwidth(64 * KiB)

    def test_sweep_time_scales_linearly(self):
        cache = DirectMappedCache(16 * MiB)
        t1 = cache.sweep_time(8 * MiB, 1e9)
        t2 = cache.sweep_time(8 * MiB, 2e9)
        assert t2 == pytest.approx(2 * t1)

    def test_simulation_validates_model_capacity_regime(self):
        """Monte-Carlo mapping agrees with the closed form when thrashing."""
        cache = DirectMappedCache(4 * MiB, line_size=4096)
        ws = 16 * MiB
        simulated = cache.simulate_miss_rate(ws, sweeps=4)
        modelled = cache.miss_rate(ws, reuse_sweeps=4)
        assert simulated == pytest.approx(modelled, abs=0.15)

    @settings(max_examples=25, deadline=None)
    @given(ws=st.integers(min_value=4096, max_value=64 * MiB))
    def test_miss_rate_bounded(self, ws):
        cache = DirectMappedCache(16 * MiB)
        assert 0.0 <= cache.miss_rate(ws) <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(ws=st.integers(min_value=4096, max_value=64 * MiB))
    def test_effective_bandwidth_bounded(self, ws):
        cache = DirectMappedCache(16 * MiB, hit_bandwidth=400e9,
                                  miss_bandwidth=80e9)
        bw = cache.effective_bandwidth(ws)
        assert 0 < bw <= 400e9
