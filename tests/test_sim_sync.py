"""Unit tests for simulated synchronisation primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.sync import CondVar, Gate, Lock, Semaphore


@pytest.fixture
def env():
    return Environment()


class TestLock:
    def test_uncontended_acquire_immediate(self, env):
        lock = Lock(env)
        ev = lock.acquire()
        assert ev.triggered
        assert lock.locked

    def test_fifo_handoff(self, env):
        lock = Lock(env)
        order = []

        def worker(env, lock, name, hold):
            yield lock.acquire()
            order.append(f"{name}-in")
            yield env.timeout(hold)
            order.append(f"{name}-out")
            lock.release()

        env.process(worker(env, lock, "a", 2.0))
        env.process(worker(env, lock, "b", 1.0))
        env.process(worker(env, lock, "c", 1.0))
        env.run()
        assert order == ["a-in", "a-out", "b-in", "b-out", "c-in", "c-out"]

    def test_release_unlocked_raises(self, env):
        with pytest.raises(SimulationError):
            Lock(env).release()

    def test_contention_counters(self, env):
        lock = Lock(env)
        lock.acquire()
        lock.acquire()  # must wait
        assert lock.total_acquires == 2
        assert lock.contended_acquires == 1


class TestSemaphore:
    def test_counts_down(self, env):
        sem = Semaphore(env, value=2)
        assert sem.acquire().triggered
        assert sem.acquire().triggered
        assert not sem.acquire().triggered

    def test_release_wakes_waiter(self, env):
        sem = Semaphore(env, value=1)
        sem.acquire()
        waiter = sem.acquire()
        assert not waiter.triggered
        sem.release()
        assert waiter.triggered

    def test_negative_initial_rejected(self, env):
        with pytest.raises(SimulationError):
            Semaphore(env, value=-1)

    def test_release_without_waiters_increments(self, env):
        sem = Semaphore(env, value=0)
        sem.release()
        assert sem.value == 1


class TestCondVar:
    def test_wait_blocks_until_notify(self, env):
        cond = CondVar(env)
        ev = cond.wait()
        assert not ev.triggered
        assert cond.notify() == 1
        assert ev.triggered

    def test_notify_without_waiters_is_lost(self, env):
        cond = CondVar(env)
        assert cond.notify() == 0
        ev = cond.wait()
        assert not ev.triggered  # the earlier notify did not latch

    def test_notify_all(self, env):
        cond = CondVar(env)
        waiters = [cond.wait() for _ in range(4)]
        assert cond.notify_all() == 4
        assert all(w.triggered for w in waiters)

    def test_fifo_notify_order(self, env):
        cond = CondVar(env)
        first, second = cond.wait(), cond.wait()
        cond.notify(1)
        assert first.triggered and not second.triggered


class TestGate:
    def test_closed_gate_blocks(self, env):
        gate = Gate(env)
        assert not gate.wait().triggered

    def test_open_latches_for_future_waiters(self, env):
        gate = Gate(env)
        gate.open()
        assert gate.wait().triggered  # signal before wait is NOT lost

    def test_open_wakes_current_waiters(self, env):
        gate = Gate(env)
        waiters = [gate.wait() for _ in range(3)]
        gate.open()
        assert all(w.triggered for w in waiters)

    def test_close_stops_latching(self, env):
        gate = Gate(env)
        gate.open()
        gate.close()
        assert not gate.wait().triggered

    def test_pulse_wakes_without_latching(self, env):
        gate = Gate(env)
        waiter = gate.wait()
        assert gate.pulse() == 1
        assert waiter.triggered
        assert not gate.is_open
        assert not gate.wait().triggered

    def test_io_thread_wakeup_pattern(self, env):
        """The §IV-B protocol: worker signals, IO thread must not miss it."""
        gate = Gate(env)
        log = []

        def io_thread(env, gate):
            for _ in range(2):
                gate.close()
                yield gate.wait()
                log.append(("io-woke", env.now))

        def worker(env, gate):
            yield env.timeout(1.0)
            gate.open()   # signal while IO is awake or asleep - either is safe
            yield env.timeout(1.0)
            gate.open()

        env.process(io_thread(env, gate))
        env.process(worker(env, gate))
        env.run()
        assert log == [("io-woke", 1.0), ("io-woke", 2.0)]
