"""Guidance-file tests: canonical form, identity, fingerprint folding."""

import json
from pathlib import Path

import pytest

import repro.apps
from repro.lint.guidance import (GUIDANCE_SCHEMA, GuidanceFile,
                                 build_guidance, load_guidance)

APPS_DIR = Path(repro.apps.__file__).parent


@pytest.fixture(scope="module")
def apps_guidance() -> GuidanceFile:
    return build_guidance([APPS_DIR])


class TestBuild:
    def test_apps_tree_yields_known_sites(self, apps_guidance):
        ids = set(apps_guidance.sites)
        assert {"StencilChare.grid", "MatMulPanels.A", "MatMulPanels.B",
                "MatMulChare.C"} <= ids

    def test_every_record_is_complete(self, apps_guidance):
        for site_id, record in apps_guidance.sites.items():
            assert record["tier"] in ("hbm", "ddr"), site_id
            assert record["priority"] >= 0.0, site_id
            assert record["fetch_order"] >= 0, site_id
            assert {"class", "name", "shared", "intents", "size",
                    "reads", "writes"} <= set(record), site_id

    def test_fetch_order_is_a_permutation(self, apps_guidance):
        orders = sorted(r["fetch_order"]
                        for r in apps_guidance.sites.values())
        assert orders == list(range(len(apps_guidance.sites)))

    def test_bandwidth_sensitive_sites_rank_above_uniform(self, apps_guidance):
        # stencil's readwrite grid carries 2x its size in traffic per
        # task; its density priority must be >= the shared readonly panels
        grid = apps_guidance.priority("StencilChare.grid")
        panel = apps_guidance.priority("MatMulPanels.A")
        assert grid >= panel > 0.0


class TestCanonicalForm:
    def test_round_trip_is_byte_identical(self, apps_guidance, tmp_path):
        first = apps_guidance.dumps()
        path = tmp_path / "guidance.json"
        apps_guidance.write(path)
        reloaded = load_guidance(path)
        assert reloaded.dumps() == first
        assert reloaded.identity() == apps_guidance.identity()

    def test_serialization_is_sorted_and_terminated(self, apps_guidance):
        text = apps_guidance.dumps()
        assert text.endswith("\n")
        doc = json.loads(text)
        assert doc["schema"] == GUIDANCE_SCHEMA
        assert list(doc["sites"]) == sorted(doc["sites"])

    def test_identity_changes_with_content(self, apps_guidance):
        mutated = GuidanceFile(sites=dict(apps_guidance.sites))
        mutated.sites["Extra.z"] = {
            "class": "Extra", "name": "z", "shared": False,
            "intents": ["readonly"], "size": None, "reads": None,
            "writes": None, "tier": "hbm", "priority": 1.0,
            "fetch_order": len(mutated.sites)}
        assert mutated.identity() != apps_guidance.identity()

    def test_exact_integers_serialize_as_ints(self, apps_guidance):
        record = apps_guidance.sites["StencilChare.grid"]
        assert isinstance(record["size"]["bytes"], int)

    def test_build_is_deterministic(self, apps_guidance):
        again = build_guidance([APPS_DIR])
        assert again.dumps() == apps_guidance.dumps()


class TestAccessors:
    def test_known_site_lookup(self, apps_guidance):
        assert apps_guidance.tier("StencilChare.grid") == "hbm"
        assert apps_guidance.order("StencilChare.grid") >= 0

    def test_unknown_site_defaults(self, apps_guidance):
        assert apps_guidance.tier("Nope.x") is None
        assert apps_guidance.priority("Nope.x") == 1.0
        assert apps_guidance.order("Nope.x") == len(apps_guidance.sites)


class TestSchemaV2:
    def test_build_emits_schema_2_with_phase_table(self, apps_guidance):
        assert apps_guidance.schema == GUIDANCE_SCHEMA == 2
        phases = apps_guidance.phase_table()
        assert phases, "apps tree must segment into phases"
        # global indices: consecutive from 0 across all modules
        assert [ph["index"] for ph in phases] == list(range(len(phases)))
        for ph in phases:
            assert {"index", "file", "label", "line", "trips",
                    "entries"} <= set(ph)

    def test_site_liveness_intervals_index_the_table(self, apps_guidance):
        count = len(apps_guidance.phase_table())
        for site_id, record in apps_guidance.sites.items():
            first = apps_guidance.first_phase(site_id)
            last = apps_guidance.last_phase(site_id)
            if first is None:
                continue
            assert 0 <= first <= last < count, site_id
            rows = record["phases"]
            assert [r["phase"] for r in rows] == \
                sorted(r["phase"] for r in rows)

    def test_entry_phase_lookup(self, apps_guidance):
        first = apps_guidance.entry_phase("StencilChare.exchange")
        assert first is not None
        assert apps_guidance.first_phase("StencilChare.grid") == first
        assert apps_guidance.entry_phase("Nope.x") is None

    def test_v1_document_loads_and_round_trips_byte_identically(
            self, apps_guidance):
        doc = json.loads(apps_guidance.dumps())
        doc["schema"] = 1
        del doc["phases"]
        for record in doc["sites"].values():
            for key in ("first_phase", "last_phase", "phases"):
                record.pop(key, None)
        v1_text = json.dumps(doc, sort_keys=True, indent=2,
                             ensure_ascii=False) + "\n"
        v1 = GuidanceFile.loads(v1_text)
        assert v1.schema == 1
        assert v1.phase_table() == []
        assert v1.first_phase("StencilChare.grid") is None
        assert v1.dumps() == v1_text

    def test_phase_rows_carry_per_phase_volumes(self, apps_guidance):
        rows = apps_guidance.sites["StencilChare.grid"]["phases"]
        assert rows
        assert all(row["reads"] or row["writes"] for row in rows)


class TestFingerprintFolding:
    def test_guidance_env_changes_code_fingerprint(self, apps_guidance,
                                                   tmp_path, monkeypatch):
        from repro.exec.fingerprint import code_fingerprint

        monkeypatch.delenv("REPRO_GUIDANCE", raising=False)
        base = code_fingerprint(refresh=True)
        path = tmp_path / "guidance.json"
        apps_guidance.write(path)
        monkeypatch.setenv("REPRO_GUIDANCE", str(path))
        with_guidance = code_fingerprint(refresh=True)
        assert with_guidance != base
        # same content at a different path hashes identically
        other = tmp_path / "copy.json"
        other.write_text(path.read_text())
        monkeypatch.setenv("REPRO_GUIDANCE", str(other))
        assert code_fingerprint(refresh=True) == with_guidance
        monkeypatch.delenv("REPRO_GUIDANCE")
        assert code_fingerprint(refresh=True) == base

    def test_missing_guidance_file_is_a_distinct_state(self, tmp_path,
                                                       monkeypatch):
        from repro.exec.fingerprint import code_fingerprint

        monkeypatch.delenv("REPRO_GUIDANCE", raising=False)
        base = code_fingerprint(refresh=True)
        monkeypatch.setenv("REPRO_GUIDANCE",
                           str(tmp_path / "does-not-exist.json"))
        assert code_fingerprint(refresh=True) != base
