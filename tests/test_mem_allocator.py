"""Unit + property tests for the device allocators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, CapacityError
from repro.mem.allocator import (
    BumpAllocator,
    FreeListAllocator,
    PagedAllocator,
    PoolAllocator,
)

ALLOCATOR_CLASSES = [BumpAllocator, FreeListAllocator, PagedAllocator,
                     PoolAllocator]


@pytest.mark.parametrize("cls", ALLOCATOR_CLASSES)
class TestAllocatorContract:
    """Behaviour every allocator must share."""

    def test_allocate_tracks_usage(self, cls):
        alloc = cls(1 << 20)
        a = alloc.allocate(8192)
        assert alloc.used >= 8192
        alloc.free(a)
        assert alloc.used == 0

    def test_zero_size_rejected(self, cls):
        with pytest.raises(AllocationError):
            cls(1000).allocate(0)

    def test_over_capacity_rejected(self, cls):
        alloc = cls(1 << 20)
        with pytest.raises(CapacityError):
            alloc.allocate(1 << 24)
        assert alloc.failed_allocs >= 1

    def test_double_free_rejected(self, cls):
        alloc = cls(4096)
        a = alloc.allocate(64)
        alloc.free(a)
        with pytest.raises(AllocationError):
            alloc.free(a)

    def test_peak_tracking(self, cls):
        alloc = cls(10000)
        a = alloc.allocate(500)
        b = alloc.allocate(500)
        alloc.free(a)
        alloc.free(b)
        assert alloc.peak_used >= 1000

    def test_costs_are_positive(self, cls):
        alloc = cls(4096)
        assert alloc.alloc_cost(1024) > 0
        assert alloc.free_cost(1024) >= 0

    def test_bad_capacity_rejected(self, cls):
        with pytest.raises(AllocationError):
            cls(0)


class TestFreeList:
    def test_reuses_freed_space(self):
        alloc = FreeListAllocator(1000)
        a = alloc.allocate(1000)
        alloc.free(a)
        b = alloc.allocate(1000)  # would fail without reuse
        assert b.offset == 0

    def test_coalescing_adjacent_ranges(self):
        alloc = FreeListAllocator(300)
        a = alloc.allocate(100)
        b = alloc.allocate(100)
        c = alloc.allocate(100)
        alloc.free(a)
        alloc.free(c)
        assert alloc.fragment_count == 2
        alloc.free(b)  # bridges a and c back into one range
        assert alloc.fragment_count == 1
        assert alloc.largest_free_range == 300

    def test_fragmentation_can_block_fit(self):
        alloc = FreeListAllocator(300)
        a = alloc.allocate(100)
        b = alloc.allocate(100)
        alloc.allocate(100)
        alloc.free(a)
        # 100B free at offset 0 and... free b too -> 200 free but split
        alloc.free(b)
        assert alloc.available == 200
        assert alloc.largest_free_range == 200  # a+b coalesce (adjacent)

    def test_first_fit_order(self):
        alloc = FreeListAllocator(300)
        a = alloc.allocate(100)
        alloc.allocate(100)
        c = alloc.allocate(100)
        alloc.free(a)
        alloc.free(c)
        d = alloc.allocate(50)
        assert d.offset == 0  # first fit takes the earliest range


class TestPaged:
    def test_no_fragmentation_ever(self):
        """Virtual allocation: capacity is the only constraint."""
        alloc = PagedAllocator(300)
        held = [alloc.allocate(100) for _ in range(3)]
        alloc.free(held[0])
        alloc.free(held[2])
        # 200 bytes free in two 'holes' - still allocatable as one block
        assert alloc.allocate(200).nbytes == 200


class TestPool:
    def test_hit_after_free_same_class(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(5000)
        pool.free(a)
        pool.allocate(5000)
        assert pool.pool_hits == 1
        assert pool.pool_misses == 1

    def test_size_class_rounding(self):
        assert PoolAllocator.size_class(1) == 4096
        assert PoolAllocator.size_class(4096) == 4096
        assert PoolAllocator.size_class(4097) == 8192
        assert PoolAllocator.size_class(3 << 20) == 4 << 20

    def test_pool_hit_is_cheap(self):
        pool = PoolAllocator(1 << 20)
        cold_cost = pool.alloc_cost(5000)
        a = pool.allocate(5000)
        pool.free(a)
        warm_cost = pool.alloc_cost(5000)
        assert warm_cost < cold_cost

    def test_drain_pools_returns_bytes(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(5000)
        pool.free(a)
        assert pool.drain_pools() == PoolAllocator.size_class(5000)

    def test_different_class_misses(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(4096)
        pool.free(a)
        pool.allocate(100_000)
        assert pool.pool_hits == 0


@pytest.mark.parametrize("cls", [FreeListAllocator, PagedAllocator])
class TestAllocatorProperties:
    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=5000)),
        max_size=60))
    def test_usage_never_negative_or_above_capacity(self, cls, ops):
        """Random alloc/free sequences keep the accounting consistent."""
        alloc = cls(20_000)
        live = []
        for do_alloc, size in ops:
            if do_alloc or not live:
                try:
                    live.append(alloc.allocate(size))
                except CapacityError:
                    pass
            else:
                alloc.free(live.pop(0))
            assert 0 <= alloc.used <= alloc.capacity
            assert alloc.used == sum(a.nbytes for a in live)

    @settings(max_examples=30, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=1, max_value=2000),
                          min_size=1, max_size=30))
    def test_free_everything_returns_to_empty(self, cls, sizes):
        alloc = cls(100_000)
        held = [alloc.allocate(s) for s in sizes]
        for a in held:
            alloc.free(a)
        assert alloc.used == 0
        if isinstance(alloc, FreeListAllocator):
            assert alloc.fragment_count == 1
            assert alloc.largest_free_range == alloc.capacity
