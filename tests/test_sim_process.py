"""Unit tests for generator-based processes."""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim.environment import Environment


@pytest.fixture
def env():
    return Environment()


class TestProcessBasics:
    def test_runs_and_returns_value(self, env):
        def body(env):
            yield env.timeout(1.0)
            return "result"

        proc = env.process(body(env))
        env.run()
        assert proc.value == "result"
        assert not proc.is_alive

    def test_non_generator_rejected(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_process_waits_on_process(self, env):
        def child(env):
            yield env.timeout(2.0)
            return 7

        def parent(env):
            value = yield env.process(child(env))
            return value * 2

        parent_proc = env.process(parent(env))
        env.run()
        assert parent_proc.value == 14

    def test_yielding_non_event_raises(self, env):
        def body(env):
            yield "not an event"

        env.process(body(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_in_process_surfaces(self, env):
        def body(env):
            yield env.timeout(1.0)
            raise ValueError("inside")

        env.process(body(env))
        with pytest.raises(ValueError, match="inside"):
            env.run()

    def test_parent_can_catch_child_exception(self, env):
        def child(env):
            yield env.timeout(1.0)
            raise ValueError("child failed")

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError:
                return "caught"
            return "missed"

        proc = env.process(parent(env))
        env.run()
        assert proc.value == "caught"

    def test_two_processes_interleave_deterministically(self, env):
        log = []

        def worker(env, name, delay):
            for i in range(3):
                yield env.timeout(delay)
                log.append((name, env.now))

        env.process(worker(env, "a", 1.0))
        env.process(worker(env, "b", 1.5))
        env.run()
        # At t=3.0 both fire; b's timeout was scheduled earlier (at t=1.5
        # vs a's at t=2.0), so b resumes first: same-time order is
        # scheduling order, deterministically.
        assert log == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0),
                       ("a", 3.0), ("b", 4.5)]


class TestInterrupt:
    def test_interrupt_kills_process(self, env):
        def body(env):
            yield env.timeout(100.0)

        proc = env.process(body(env))
        env.timeout(1.0).add_callback(lambda e: proc.interrupt("stop"))
        env.run()
        assert not proc.is_alive

    def test_interrupt_can_be_handled(self, env):
        def body(env):
            try:
                yield env.timeout(100.0)
            except ProcessKilled:
                return "cleaned up"

        proc = env.process(body(env))
        env.timeout(1.0).add_callback(lambda e: proc.interrupt())
        env.run()
        assert proc.value == "cleaned up"

    def test_interrupt_finished_process_is_noop(self, env):
        def body(env):
            yield env.timeout(1.0)
            return 1

        proc = env.process(body(env))
        env.run()
        proc.interrupt()  # must not raise
        assert proc.value == 1


class TestDiagnostics:
    def test_active_process_names(self, env):
        def body(env):
            yield env.event()

        env.process(body(env), name="alpha")
        env.process(body(env), name="beta")
        env.run()
        assert env.active_process_names == ("alpha", "beta")

    def test_waiting_on_exposed(self, env):
        target = env.event(name="the-target")

        def body(env):
            yield target

        proc = env.process(body(env))
        env.run()
        assert proc.waiting_on is target
