"""Tests for the HBM occupancy timeline."""

import pytest

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.core.api import OOCRuntimeBuilder
from repro.trace.occupancy import occupancy_stats, render_occupancy
from repro.units import GiB, MiB


class TestOccupancyStats:
    def test_empty_log(self):
        assert occupancy_stats([], 100)["samples"] == 0

    def test_single_sample(self):
        stats = occupancy_stats([(0.0, 50)], 100)
        assert stats["peak"] == 0.5
        assert stats["mean"] == 0.5

    def test_single_sample_mean_is_a_fraction(self):
        # regression: the one-entry path must normalise by capacity —
        # a raw byte count (here 512 MiB) would leak out as mean > 1
        capacity = 1 << 30
        stats = occupancy_stats([(3.5, 512 * 1024 * 1024)], capacity)
        assert stats["mean"] == pytest.approx(0.5)
        assert stats["peak"] == pytest.approx(0.5)
        assert 0.0 <= stats["mean"] <= 1.0

    def test_zero_span_multi_sample_mean_is_a_fraction(self):
        # two samples at the same instant: the span is zero, so the mean
        # falls back to the last sample's occupancy — still a fraction
        stats = occupancy_stats([(1.0, 25), (1.0, 75)], 100)
        assert stats["mean"] == pytest.approx(0.75)
        assert stats["peak"] == pytest.approx(0.75)
        assert stats["samples"] == 2

    def test_time_weighted_mean(self):
        # 100% for 1s, then 0% for 9s -> mean 10%
        log = [(0.0, 100), (1.0, 0), (10.0, 0)]
        stats = occupancy_stats(log, 100)
        assert stats["peak"] == 1.0
        assert stats["mean"] == pytest.approx(0.1)

    def test_render_contains_stats(self):
        log = [(0.0, 0), (1.0, 80), (2.0, 100)]
        art = render_occupancy(log, 100, width=20)
        assert "peak=100%" in art
        assert art.startswith("hbm |")

    def test_render_empty(self):
        assert render_occupancy([], 100) == "(no occupancy samples)"


class TestOccupancyFromRun:
    def test_manager_logs_moves_when_tracing(self):
        built = OOCRuntimeBuilder("multi-io", cores=8,
                                  mcdram_capacity=256 * MiB,
                                  ddr_capacity=2 * GiB, trace=True).build()
        cfg = StencilConfig(total_bytes=512 * MiB, block_bytes=16 * MiB,
                            iterations=2)
        Stencil3D(built, cfg).run()
        log = built.manager.occupancy_log
        assert len(log) > 0
        times = [t for t, _ in log]
        assert times == sorted(times)
        stats = occupancy_stats(log, built.machine.hbm.capacity)
        assert 0.5 < stats["peak"] <= 1.0  # out-of-core run fills HBM

    def test_no_log_when_tracing_disabled(self):
        built = OOCRuntimeBuilder("multi-io", cores=8,
                                  mcdram_capacity=256 * MiB,
                                  ddr_capacity=2 * GiB, trace=False).build()
        cfg = StencilConfig(total_bytes=512 * MiB, block_bytes=16 * MiB,
                            iterations=1)
        Stencil3D(built, cfg).run()
        assert built.manager.occupancy_log == []
