"""Incremental vs full fluid solver: identical simulated timelines.

The tentpole contract: ``solver="incremental"`` is a pure wall-clock
optimisation — every simulated quantity (completion instants, rates,
application run times) must match the eager ``solver="full"`` oracle.
Exact bit-equality is not required (component-local solves change float
summation order), so comparisons use a tight relative tolerance.
"""

import math

import pytest

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.bench.harness import Scale
from repro.core.api import OOCRuntimeBuilder
from repro.errors import SimulationError
from repro.machine.knl import build_knl
from repro.mem.block import DataBlock
from repro.sim.environment import Environment
from repro.sim.fluid import FluidNetwork
from repro.units import GiB, MiB

REL = 1e-9


def test_solver_flag_validated():
    with pytest.raises(SimulationError):
        FluidNetwork(Environment(), solver="bogus")


def _synthetic_run(solver, *, lanes=6, flows_per_lane=3, shared=True):
    """A mixed workload: per-lane private links plus an optional shared
    link coupling half the lanes; staggered arrivals and departures.

    Returns (finish times by fid, sampled (time, rates) trace, end time).
    """
    env = Environment()
    net = FluidNetwork(env, solver=solver)
    shared_link = net.add_link("shared", 50e9) if shared else None
    finish = {}
    samples = []
    all_flows = []

    def driver():
        for wave in range(3):
            for i in range(lanes):
                read = net.link(f"l{i}.read")
                for j in range(flows_per_lane):
                    links = [read]
                    if shared_link is not None and i % 2 == 0:
                        links.append(shared_link)
                    nbytes = 96e6 * (1 + ((wave + i + j) % 5) / 5)
                    cap = 9e9 if j == 0 else math.inf
                    all_flows.append(
                        net.start_flow(nbytes, links, weight=1 + j,
                                       max_rate=cap))
                yield env.timeout(1e-3)  # staggered arrivals
            # sample mid-wave rates
            samples.append((env.now,
                            [f.rate for f in all_flows if not f.finished]))
            yield env.timeout(5e-3)

    for i in range(lanes):
        net.add_link(f"l{i}.read", 80e9)
    env.process(driver(), name="driver")
    env.run()
    for f in all_flows:
        finish[f.fid] = f.finished_at
    return finish, samples, env.now


@pytest.mark.parametrize("shared", [True, False])
def test_synthetic_timeline_equivalence(shared):
    full = _synthetic_run("full", shared=shared)
    inc = _synthetic_run("incremental", shared=shared)
    assert inc[2] == pytest.approx(full[2], rel=REL)
    assert set(inc[0]) == set(full[0])
    for fid, t in full[0].items():
        assert inc[0][fid] == pytest.approx(t, rel=REL), f"flow {fid}"
    for (t_full, rates_full), (t_inc, rates_inc) in zip(full[1], inc[1]):
        assert t_inc == pytest.approx(t_full, rel=REL)
        assert rates_inc == pytest.approx(rates_full, rel=REL)


def _fig7_style_run(solver, *, threads=64):
    """The Figure 7 shape: 64 concurrent movers DDR->HBM on one node."""
    env = Environment()
    node = build_knl(env, mcdram_capacity=Scale.SMALL.mcdram,
                     ddr_capacity=Scale.SMALL.ddr, fluid_solver=solver)
    per_thread = Scale.SMALL.size(2 * GiB) // threads
    blocks = []
    for i in range(threads):
        block = DataBlock(f"mig{i}", per_thread)
        node.registry.register(block)
        node.topology.place_block(block, node.ddr)
        blocks.append(block)
    done = [env.process(node.mover.move(b, node.hbm), name=f"mv{i}")
            for i, b in enumerate(blocks)]
    env.run(env.all_of(done))
    return env.now, node.network.solves


def test_fig7_memcpy_timeline_equivalence():
    t_full, solves_full = _fig7_style_run("full")
    t_inc, solves_inc = _fig7_style_run("incremental")
    assert t_inc == pytest.approx(t_full, rel=REL)
    # ... and the incremental solver actually solves less
    assert solves_inc < solves_full


def _fig8_style_run(solver):
    """A shrunk Figure 8 point: Stencil3D under the multi-io strategy."""
    built = OOCRuntimeBuilder(
        "multi-io", cores=8,
        mcdram_capacity=Scale.SMALL.mcdram // 8,
        ddr_capacity=Scale.SMALL.ddr // 8,
        trace=False, fluid_solver=solver).build()
    cfg = StencilConfig(total_bytes=Scale.SMALL.size(4 * GiB),
                        block_bytes=Scale.SMALL.size(4 * GiB) // 16,
                        iterations=2)
    result = Stencil3D(built, cfg).run()
    return result.total_time, built.machine.network.solves


def test_fig8_stencil_timeline_equivalence():
    t_full, solves_full = _fig8_style_run("full")
    t_inc, solves_inc = _fig8_style_run("incremental")
    assert t_inc == pytest.approx(t_full, rel=REL)
    assert solves_inc < solves_full


class TestIncrementalMechanics:
    def test_same_instant_arrivals_batch_into_one_solve(self):
        env = Environment()
        net = FluidNetwork(env)
        link = net.add_link("l", 10e9)
        flows = [net.start_flow(1e9, [link]) for _ in range(16)]
        env.run(env.all_of([f.done for f in flows]))
        # one solve for the 16 same-instant arrivals; the joint departure
        # empties the component, which needs no solve at all
        assert net.solves == 1

    def test_rates_readable_before_running(self):
        """Reading .rate settles the deferred solve (no stale zeros)."""
        env = Environment()
        net = FluidNetwork(env)
        link = net.add_link("l", 10e9)
        a = net.start_flow(1e9, [link])
        b = net.start_flow(1e9, [link])
        assert a.rate == pytest.approx(5e9)
        assert b.rate == pytest.approx(5e9)
        assert link.utilization == pytest.approx(1.0)

    def test_untouched_component_not_resolved(self):
        """A change on one lane must not re-solve independent lanes."""
        env = Environment()
        net = FluidNetwork(env)
        l0 = net.add_link("l0", 10e9)
        l1 = net.add_link("l1", 10e9)
        a = net.start_flow(1e9, [l0])
        a2 = net.start_flow(40e9, [l0])
        b = net.start_flow(50e9, [l1])
        assert a.rate == pytest.approx(5e9)
        solves_before = net.solves
        env.run(a.done)  # departure on lane 0 only
        # reading a rate settles the deferred post-departure solve: exactly
        # one (lane 0's component shrinking to one flow); lane 1's flow
        # kept its rate without being re-solved
        assert a2.rate == pytest.approx(10e9)
        assert b.rate == pytest.approx(10e9)
        assert net.solves == solves_before + 1

    def test_cancel_mid_flight_matches_full(self):
        def run(solver):
            env = Environment()
            net = FluidNetwork(env, solver=solver)
            link = net.add_link("l", 10e9)
            keep = net.start_flow(20e9, [link])
            victim = net.start_flow(20e9, [link])

            def killer():
                yield env.timeout(1.0)
                net.cancel_flow(victim)

            env.process(killer(), name="killer")
            with pytest.raises(SimulationError):
                env.run(victim.done)
            env.run(keep.done)
            return env.now, keep.finished_at

        assert run("incremental") == pytest.approx(run("full"), rel=REL)
