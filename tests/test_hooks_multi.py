"""Shared hook slots: multi-observer dispatch + three-subsystem coexistence."""

import pytest

from repro.hooks import FanOut, HookSlot
from repro.lint import hooks as lint_hooks
from repro.metrics import hooks as metrics_hooks
from repro.race import hooks as race_hooks


class Recorder:
    def __init__(self):
        self.calls = []

    def on_retain(self, block):
        self.calls.append(("retain", block))
        return "ignored"

    def on_release(self, block):
        self.calls.append(("release", block))


class RetainOnly:
    def __init__(self):
        self.calls = []

    def on_retain(self, block):
        self.calls.append(("retain", block))


class TestFanOut:
    def test_dispatches_in_install_order(self):
        a, b = Recorder(), Recorder()
        fan = FanOut([a, b])
        fan.on_retain("blk")
        assert a.calls == [("retain", "blk")]
        assert b.calls == [("retain", "blk")]

    def test_skips_observers_missing_the_method(self):
        a, b = Recorder(), RetainOnly()
        fan = FanOut([a, b])
        fan.on_release("blk")  # RetainOnly has no on_release: no crash
        assert a.calls == [("release", "blk")]
        assert b.calls == []

    def test_drops_return_values(self):
        fan = FanOut([Recorder()])
        assert fan.on_retain("blk") is None

    def test_memoizes_dispatchers(self):
        fan = FanOut([Recorder()])
        assert fan.on_retain is fan.on_retain  # second read skips __getattr__

    def test_private_names_raise(self):
        with pytest.raises(AttributeError):
            FanOut([Recorder()])._secret


class TestHookSlot:
    def setup_method(self):
        # slots under test publish into this module's namespace
        import sys
        self.mod = sys.modules[__name__]

    def teardown_method(self):
        if hasattr(self.mod, "probe"):
            del self.mod.probe

    def test_publishes_none_single_fanout(self):
        slot = HookSlot(__name__, "probe")
        a, b = Recorder(), Recorder()
        slot.install(a)
        assert self.mod.probe is a  # sole observer: no indirection
        slot.install(b)
        assert isinstance(self.mod.probe, FanOut)
        slot.uninstall(b)
        assert self.mod.probe is a
        slot.uninstall(a)
        assert self.mod.probe is None

    def test_install_is_idempotent_per_object(self):
        slot = HookSlot(__name__, "probe")
        a = Recorder()
        slot.install(a)
        slot.install(a)
        assert self.mod.probe is a

    def test_install_none_raises(self):
        with pytest.raises(RuntimeError):
            HookSlot(__name__, "probe").install(None)

    def test_exclusive_slot_rejects_second_observer(self):
        slot = HookSlot(__name__, "probe", exclusive=True, kind="registry")
        slot.install(Recorder())
        with pytest.raises(RuntimeError, match="registry is already"):
            slot.install(Recorder())

    def test_uninstall_none_clears_all(self):
        slot = HookSlot(__name__, "probe")
        slot.install(Recorder())
        slot.install(Recorder())
        slot.uninstall()
        assert self.mod.probe is None
        slot.uninstall()  # idempotent on empty

    def test_uninstall_unknown_observer_is_noop(self):
        slot = HookSlot(__name__, "probe")
        a = Recorder()
        slot.install(a)
        slot.uninstall(Recorder())
        assert self.mod.probe is a


class TestSubsystemSlots:
    def test_lint_slot_is_shared(self):
        a, b = Recorder(), Recorder()
        try:
            lint_hooks.install(a)
            lint_hooks.install(b)
            assert isinstance(lint_hooks.observer, FanOut)
            lint_hooks.observer.on_retain("blk")
            assert a.calls == b.calls == [("retain", "blk")]
        finally:
            lint_hooks.uninstall()
        assert lint_hooks.observer is None

    def test_metrics_slot_is_exclusive(self):
        from repro.metrics import MetricsRegistry
        try:
            metrics_hooks.install(MetricsRegistry())
            with pytest.raises(RuntimeError):
                metrics_hooks.install(MetricsRegistry())
        finally:
            metrics_hooks.uninstall()
        assert metrics_hooks.registry is None


class TestThreeObserverCoexistence:
    """simsan + racesan + metrics active in one run, none steps on another."""

    def test_all_three_observe_one_stencil_run(self):
        from repro.apps.stencil3d import Stencil3D, StencilConfig
        from repro.core.api import OOCRuntimeBuilder
        from repro.lint import SimSanitizer
        from repro.metrics import MetricsRegistry
        from repro.race import RaceSanitizer
        from repro.sim.environment import Environment

        env = Environment()
        simsan = SimSanitizer(mode="record").install()
        racesan = RaceSanitizer().install(env)
        registry = MetricsRegistry()
        metrics_hooks.install(registry)
        try:
            assert isinstance(lint_hooks.observer, FanOut)
            built = OOCRuntimeBuilder(
                "multi-io", cores=8, mcdram_capacity=128 << 20,
                ddr_capacity=1 << 30, trace=False).build_into(env)
            cfg = StencilConfig(total_bytes=256 << 20, block_bytes=16 << 20,
                                iterations=1)
            Stencil3D(built, cfg).run()
            simsan.check_quiescent(built.manager)
        finally:
            metrics_hooks.uninstall()
            racesan.uninstall()
            simsan.uninstall()
        assert simsan.violations == []
        assert racesan.findings == []
        assert racesan.accesses_observed > 0
        assert racesan.events_observed > 0
        names = {inst.name for inst in registry.instruments()}
        assert "repro_prefetch_issued_total" in names
        # everything unwound: the fast-path globals are None again
        assert lint_hooks.observer is None
        assert race_hooks.tracker is None
        assert metrics_hooks.registry is None
