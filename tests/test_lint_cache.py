"""Fingerprint-keyed lint/guidance cache: hits, invalidation, bypass."""

import pytest

from repro.lint import traffic
from repro.lint.cache import (AnalysisCache, cached_build_guidance,
                              cached_check_paths, findings_from_payload,
                              findings_to_payload)
from repro.lint.findings import Finding, Severity

CLEAN = """\
from repro.runtime.chare import Chare
from repro.runtime.entry import entry


class C(Chare):
    @entry
    def setup(self, barrier):
        self.a = self.declare_block("a", 1024)
        barrier.contribute()

    @entry(prefetch=True, readwrite=["a"])
    def go(self, red):
        result = yield from self.kernel(
            flops=1.0, reads=[self.a], writes=[self.a])
        red.contribute(result.duration)


def main(arr, red):
    arr.broadcast("setup", red)
    arr.broadcast("go", red)
"""

BAD = CLEAN.replace('readwrite=["a"]', 'readonly=["a"]')


@pytest.fixture
def target(tmp_path):
    path = tmp_path / "app.py"
    path.write_text(CLEAN)
    return path


@pytest.fixture
def cache(tmp_path):
    return AnalysisCache(tmp_path / "cache-root")


class TestPayload:
    def test_findings_round_trip(self):
        findings = [Finding(rule="REP201", severity=Severity.ERROR,
                            message="m", file="f.py", line=3,
                            chare="C", entry="go")]
        assert findings_from_payload(
            findings_to_payload(findings)) == findings


class TestLintCaching:
    def test_cold_then_warm(self, target, cache):
        first = cached_check_paths([target], cache=cache)
        assert (cache.hits, cache.stores) == (0, 1)
        second = cached_check_paths([target], cache=cache)
        assert cache.hits == 1
        assert list(second) == list(first)

    def test_warm_hit_preserves_findings_exactly(self, tmp_path, cache):
        path = tmp_path / "bad.py"
        path.write_text(BAD)
        cold = cached_check_paths([path], cache=cache)
        warm = cached_check_paths([path], cache=cache)
        assert list(warm) == list(cold) and list(cold)

    def test_editing_target_invalidates(self, target, cache):
        assert not list(cached_check_paths([target], cache=cache))
        target.write_text(BAD)
        report = cached_check_paths([target], cache=cache)
        assert cache.hits == 0 and cache.stores == 2
        assert any(f.rule == "REP102" for f in report)

    def test_disabled_cache_never_touches_disk(self, target, tmp_path):
        cache = AnalysisCache(tmp_path / "off", enabled=False)
        cached_check_paths([target], cache=cache)
        cached_check_paths([target], cache=cache)
        assert (cache.hits, cache.stores) == (0, 0)
        assert not (tmp_path / "off").exists()

    def test_force_crash_hook_bypasses_warm_entries(self, target, cache):
        cached_check_paths([target], cache=cache)  # warm
        traffic._FORCE_CRASH = "C"  # crash while analyzing class C
        try:
            with pytest.raises(traffic.AnalyzerCrash):
                cached_check_paths([target], cache=cache)
        finally:
            traffic._FORCE_CRASH = None
        assert cache.hits == 0

    def test_lint_and_guide_keys_do_not_collide(self, target, cache):
        cached_check_paths([target], cache=cache)
        cached_build_guidance([target], cache=cache)
        assert cache.hits == 0 and cache.stores == 2

    def test_corrupt_entry_is_a_miss(self, target, cache):
        cached_check_paths([target], cache=cache)
        generation = cache._generation()
        for entry in generation.glob("*.json"):
            entry.write_text("{truncated")
        report = cached_check_paths([target], cache=cache)
        assert cache.misses >= 1
        assert not list(report)


class TestGuidanceCaching:
    def test_warm_guidance_is_byte_identical(self, target, cache):
        cold = cached_build_guidance([target], cache=cache)
        warm = cached_build_guidance([target], cache=cache)
        assert cache.hits == 1
        assert warm.dumps() == cold.dumps()

    def test_warm_guidance_keeps_phase_table(self, target, cache):
        cached_build_guidance([target], cache=cache)
        warm = cached_build_guidance([target], cache=cache)
        assert warm.schema >= 2
        assert [ph["label"] for ph in warm.phase_table()] == \
            ["C.setup", "C.go"]
        assert warm.first_phase("C.a") == 1
