"""Tests for StaticGuidedStrategy and the block-label -> site mapping."""

import pytest

from repro.core.api import OOCRuntimeBuilder
from repro.core.strategies.static_guided import (StaticGuidedStrategy,
                                                 block_site_id)
from repro.errors import SchedulingError
from repro.lint.guidance import GuidanceFile
from repro.mem.block import BlockState, DataBlock
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.units import GiB, MiB

HBM = 256 * MiB
DDR = 2 * GiB


def record(cls, name, *, tier="hbm", priority=1.0, order=0, shared=False):
    return {"class": cls, "name": name, "shared": shared,
            "intents": ["readwrite"], "size": None, "reads": None,
            "writes": None, "tier": tier, "priority": priority,
            "fetch_order": order}


class TestBlockSiteId:
    def test_chare_array_block(self):
        block = DataBlock("StencilChare[3].grid", MiB)
        assert block_site_id(block) == "StencilChare.grid"

    def test_multi_index_chare_block(self):
        block = DataBlock("MatMulChare[(1, 2)].C", MiB)
        assert block_site_id(block) == "MatMulChare.C"

    def test_shared_nodegroup_block(self):
        block = DataBlock("MatMulPanels[nodegroup].shared('A', 2)", MiB)
        assert block_site_id(block) == "MatMulPanels.A"

    def test_unstructured_label_is_none(self):
        assert block_site_id(DataBlock("scratch", MiB)) is None


class Worker(Chare):
    @entry
    def setup(self, nbytes, barrier):
        self.data = self.declare_block("data", nbytes)
        barrier.contribute()

    @entry(prefetch=True, readwrite=["data"])
    def compute(self, reducer):
        result = yield from self.kernel(
            flops=1e8, reads=[self.data], writes=[self.data])
        reducer.contribute(result.duration)


class TwoBlockWorker(Chare):
    @entry
    def setup(self, nbytes, barrier):
        # "cold" declared first: arrival order favours it, guidance
        # priority must override
        self.cold = self.declare_block("cold", nbytes)
        self.hot = self.declare_block("hot", nbytes)
        barrier.contribute()

    @entry(prefetch=True, readonly=["cold"], readwrite=["hot"])
    def compute(self, reducer):
        result = yield from self.kernel(
            flops=1e8, reads=[self.cold, self.hot], writes=[self.hot])
        reducer.contribute(result.duration)


def run_app(strategy, *, chare=Worker, chares=16, block=32 * MiB, rounds=2,
            cores=4, **builder_kwargs):
    built = OOCRuntimeBuilder(strategy, cores=cores, mcdram_capacity=HBM,
                              ddr_capacity=DDR, trace=False,
                              **builder_kwargs).build()
    rt = built.runtime
    arr = rt.create_array(chare, chares)
    barrier = rt.reducer(chares)
    arr.broadcast("setup", block, barrier)
    rt.run_until(barrier.done)
    built.manager.finalize_placement()
    for _ in range(rounds):
        red = rt.reducer(chares)
        arr.broadcast("compute", red)
        rt.run_until(red.done)
    return built, arr


class TestPlacement:
    def test_unknown_sites_place_exactly_like_naive(self):
        # the test Worker has no guidance record, so every block gets
        # the default density and placement degrades to the baseline
        empty = GuidanceFile(sites={})
        guided, garr = run_app("static-guided",
                               strategy_kwargs={"guidance": empty})
        naive, narr = run_app("naive")
        assert [c.data.state for c in garr] == [c.data.state for c in narr]
        assert guided.env.now == naive.env.now

    def test_high_priority_sites_claim_hbm_first(self):
        guide = GuidanceFile(sites={
            "TwoBlockWorker.cold": record("TwoBlockWorker", "cold",
                                          priority=0.5, order=0),
            "TwoBlockWorker.hot": record("TwoBlockWorker", "hot",
                                         priority=5.0, order=1),
        })
        # 8 chares x 2 x 32 MiB = 512 MiB over a 256 MiB HBM: only the
        # 8 hot blocks fit
        built, arr = run_app("static-guided", chare=TwoBlockWorker,
                             chares=8, rounds=1,
                             strategy_kwargs={"guidance": guide})
        assert all(c.hot.state is BlockState.INHBM for c in arr)
        assert all(c.cold.state is BlockState.INDDR for c in arr)

    def test_ddr_tier_sites_are_pinned(self):
        guide = GuidanceFile(sites={
            "Worker.data": record("Worker", "data", tier="ddr",
                                  priority=0.0)})
        built, arr = run_app("static-guided", chares=4, rounds=1,
                             strategy_kwargs={"guidance": guide})
        assert all(c.data.state is BlockState.INDDR for c in arr)
        assert built.strategy.blocks_pinned_ddr == 4

    def test_guidance_path_kwarg_and_env(self, tmp_path, monkeypatch):
        guide = GuidanceFile(sites={
            "Worker.data": record("Worker", "data", tier="ddr")})
        path = tmp_path / "g.json"
        guide.write(path)
        strategy = StaticGuidedStrategy(guidance_path=str(path))
        assert strategy.guidance().tier("Worker.data") == "ddr"
        monkeypatch.setenv("REPRO_GUIDANCE", str(path))
        from_env = StaticGuidedStrategy()
        assert from_env.guidance().tier("Worker.data") == "ddr"

    def test_never_intercepts(self):
        strategy = StaticGuidedStrategy(guidance=GuidanceFile(sites={}))
        assert strategy.intercepts is False
        with pytest.raises(SchedulingError):
            next(strategy.submit(None, None))
        with pytest.raises(SchedulingError):
            next(strategy.task_finished(None, None))


class TestAcceptance:
    """ISSUE 7 gate: the three apps complete under simsan + racesan when
    driven purely by the guidance bwlint emitted, no slower than naive."""

    def _sanitized(self, run):
        from repro.lint import SimSanitizer

        simsan = SimSanitizer(mode="record").install()
        racesan = None
        try:
            built, racesan, result = run()
            simsan.check_quiescent(built.manager)
            assert simsan.violations == [], \
                [v.render() for v in simsan.violations]
            assert racesan.findings == [], \
                [f.render() for f in racesan.findings]
            return result
        finally:
            # both observers live in process-wide hook slots: leaking one
            # would slow (and potentially fail) every later test
            if racesan is not None:
                racesan.uninstall()
            simsan.uninstall()

    def _build(self, strategy):
        from repro.race.detector import RaceSanitizer

        built = OOCRuntimeBuilder(strategy, cores=8,
                                  mcdram_capacity=128 * MiB,
                                  ddr_capacity=2 * GiB, trace=False).build()
        racesan = RaceSanitizer(stacks=False).install(built.env)
        return built, racesan

    def _stencil(self, strategy):
        from repro.apps.stencil3d import Stencil3D, StencilConfig

        def run():
            built, racesan = self._build(strategy)
            cfg = StencilConfig(total_bytes=256 * MiB, block_bytes=16 * MiB,
                                iterations=2)
            return built, racesan, Stencil3D(built, cfg).run()
        return self._sanitized(run)

    def _matmul(self, strategy):
        from repro.apps.matmul import MatMul, MatMulConfig

        def run():
            built, racesan = self._build(strategy)
            cfg = MatMulConfig.for_working_set(128 * MiB, block_dim=64)
            return built, racesan, MatMul(built, cfg).run()
        return self._sanitized(run)

    def _spmv(self, strategy):
        from repro.apps.spmv import SpMV, SpMVConfig

        def run():
            built, racesan = self._build(strategy)
            cfg = SpMVConfig(block_rows=16, block_bytes=8 * MiB,
                             vector_bytes=MiB, couplings=3, iterations=2,
                             seed=0)
            return built, racesan, SpMV(built, cfg).run()
        return self._sanitized(run)

    def test_stencil3d_completes_no_slower_than_naive(self):
        guided = self._stencil("static-guided")
        naive = self._stencil("naive")
        assert guided.total_time <= naive.total_time

    def test_matmul_completes_no_slower_than_naive(self):
        guided = self._matmul("static-guided")
        naive = self._matmul("naive")
        assert guided.total_time <= naive.total_time

    def test_spmv_completes_no_slower_than_naive(self):
        guided = self._spmv("static-guided")
        naive = self._spmv("naive")
        assert guided.total_time <= naive.total_time
