"""Property test: the fluid solver's allocation is max-min fair.

A rate allocation is (weighted) max-min fair iff it is feasible and every
flow is *bottlenecked*: it either runs at its own rate cap, or it crosses
at least one saturated link on which no other flow gets a higher
weight-normalised rate.  This is the textbook characterisation, checked
directly against randomly generated topologies — independent of the
progressive-filling implementation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.environment import Environment
from repro.sim.fluid import FluidNetwork

TOPOLOGY = st.fixed_dictionaries({
    "link_caps": st.lists(st.floats(min_value=1.0, max_value=1000.0),
                          min_size=1, max_size=5),
    "flows": st.lists(
        st.fixed_dictionaries({
            "links": st.sets(st.integers(min_value=0, max_value=4),
                             min_size=1, max_size=3),
            "weight": st.floats(min_value=0.1, max_value=4.0),
            "cap": st.one_of(st.none(),
                             st.floats(min_value=0.5, max_value=500.0)),
        }),
        min_size=1, max_size=10),
})


def build(spec):
    env = Environment()
    net = FluidNetwork(env)
    links = [net.add_link(f"l{i}", cap)
             for i, cap in enumerate(spec["link_caps"])]
    flows = []
    for f in spec["flows"]:
        chosen = [links[i % len(links)] for i in f["links"]]
        # dedupe while preserving determinism
        chosen = list(dict.fromkeys(chosen))
        flows.append(net.start_flow(
            1e9, chosen, weight=f["weight"],
            max_rate=f["cap"] if f["cap"] is not None else float("inf")))
    return net, links, flows


@settings(max_examples=60, deadline=None)
@given(spec=TOPOLOGY)
def test_allocation_is_feasible(spec):
    net, links, flows = build(spec)
    for link in links:
        load = sum(f.rate for f in flows if link in f.links)
        assert load <= link.capacity * (1 + 1e-6)
    for flow in flows:
        assert flow.rate <= flow.max_rate * (1 + 1e-6)
        assert flow.rate >= 0.0


@settings(max_examples=60, deadline=None)
@given(spec=TOPOLOGY)
def test_every_flow_is_bottlenecked(spec):
    """Max-min characterisation: each flow is rate-capped or crosses a
    saturated link where its normalised rate is maximal."""
    net, links, flows = build(spec)
    for flow in flows:
        if flow.rate >= flow.max_rate * (1 - 1e-6):
            continue  # bottlenecked by its own cap
        bottleneck_found = False
        for link in flow.links:
            load = sum(f.rate for f in flows if link in f.links)
            saturated = load >= link.capacity * (1 - 1e-6)
            if not saturated:
                continue
            my_norm = flow.rate / flow.weight
            others = [f.rate / f.weight for f in flows
                      if link in f.links and f is not flow]
            if all(my_norm >= o * (1 - 1e-6) for o in others):
                bottleneck_found = True
                break
        assert bottleneck_found, (
            f"flow {flow.fid} (rate {flow.rate}) has no bottleneck")


@settings(max_examples=30, deadline=None)
@given(spec=TOPOLOGY)
def test_allocation_is_pareto_efficient_per_link(spec):
    """No single-link flow could be sped up without violating feasibility:
    every flow below its cap crosses at least one saturated link."""
    net, links, flows = build(spec)
    for flow in flows:
        if flow.rate >= flow.max_rate * (1 - 1e-6):
            continue
        saturated_links = [
            link for link in flow.links
            if sum(f.rate for f in flows if link in f.links)
            >= link.capacity * (1 - 1e-6)]
        assert saturated_links, f"flow {flow.fid} could be faster"
