"""Small-sample stats: Sample summaries and Welch's t-test."""

import math

import pytest

from repro.obs.stats import Sample, summarize, t_critical, welch


class TestSummarize:
    def test_empty(self):
        sample = summarize([])
        assert sample == Sample(0, 0.0, 0.0, 0.0)

    def test_single_value_has_no_spread(self):
        sample = summarize([4.2])
        assert sample.n == 1
        assert sample.mean == pytest.approx(4.2)
        assert sample.std == 0.0
        assert sample.ci95 == 0.0

    def test_known_mean_and_std(self):
        sample = summarize([2.0, 4.0, 6.0])
        assert sample.mean == pytest.approx(4.0)
        assert sample.std == pytest.approx(2.0)      # ddof=1
        # t(df=2, 95%) = 4.303; CI = t * s / sqrt(n)
        assert sample.ci95 == pytest.approx(4.303 * 2.0 / math.sqrt(3))

    def test_low_high_bracket_mean(self):
        sample = summarize([1.0, 2.0, 3.0, 4.0])
        assert sample.low < sample.mean < sample.high
        assert sample.high - sample.mean == pytest.approx(sample.ci95)


class TestTCritical:
    def test_table_endpoints(self):
        assert t_critical(1) == pytest.approx(12.706)
        assert t_critical(30) == pytest.approx(2.042)

    def test_normal_limit_past_table(self):
        assert t_critical(31) == pytest.approx(1.960)
        assert t_critical(1000) == pytest.approx(1.960)

    def test_fractional_df_floor(self):
        assert t_critical(2.7) == pytest.approx(4.303)


class TestWelch:
    def test_empty_side_returns_none(self):
        assert welch([], [1.0]) is None
        assert welch([1.0], []) is None

    def test_clearly_different_samples_significant(self):
        a = [10.0, 10.1, 9.9, 10.05]
        b = [20.0, 20.2, 19.8, 20.1]
        result = welch(a, b)
        assert result.significant
        assert result.marker() == "*"
        assert result.t < 0          # a below b

    def test_identical_samples_not_significant(self):
        a = [5.0, 5.1, 4.9]
        result = welch(a, list(a))
        assert not result.significant
        assert result.marker() == ""

    def test_zero_variance_equal_means(self):
        result = welch([3.0, 3.0], [3.0, 3.0])
        assert not result.significant
        assert result.t == 0.0

    def test_zero_variance_different_means(self):
        # deterministic replicates: any difference is real
        result = welch([3.0, 3.0], [4.0, 4.0])
        assert result.significant
        assert math.isinf(result.t)

    def test_welch_satterthwaite_df_bounded(self):
        a = [1.0, 2.0, 3.0, 4.0, 5.0]
        b = [1.1, 2.1, 2.9, 4.2, 5.1]
        result = welch(a, b)
        assert 1.0 <= result.df <= len(a) + len(b) - 2
