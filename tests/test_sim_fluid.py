"""Unit + property tests for the max-min fair fluid bandwidth model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.fluid import FluidNetwork


def make_net(*caps):
    env = Environment()
    net = FluidNetwork(env)
    for i, cap in enumerate(caps):
        net.add_link(f"l{i}", cap)
    return env, net


class TestSingleLink:
    def test_lone_flow_gets_full_capacity(self):
        env, net = make_net(100.0)
        flow = net.start_flow(50.0, ["l0"])
        env.run(until=flow.done)
        assert env.now == pytest.approx(0.5)

    def test_equal_flows_share_equally(self):
        env, net = make_net(100.0)
        flows = [net.start_flow(50.0, ["l0"]) for _ in range(2)]
        env.run()
        assert all(f.finished_at == pytest.approx(1.0) for f in flows)

    def test_weighted_sharing(self):
        env, net = make_net(90.0)
        heavy = net.start_flow(60.0, ["l0"], weight=2.0)   # rate 60
        light = net.start_flow(30.0, ["l0"], weight=1.0)   # rate 30
        env.run()
        assert heavy.finished_at == pytest.approx(1.0)
        assert light.finished_at == pytest.approx(1.0)

    def test_max_rate_cap_honoured(self):
        env, net = make_net(1000.0)
        flow = net.start_flow(10.0, ["l0"], max_rate=5.0)
        env.run(until=flow.done)
        assert env.now == pytest.approx(2.0)

    def test_spare_capacity_redistributed_to_uncapped(self):
        env, net = make_net(100.0)
        capped = net.start_flow(100.0, ["l0"], max_rate=10.0)
        free = net.start_flow(90.0, ["l0"])
        env.run(until=free.done)
        # free flow gets 100-10=90 -> finishes at t=1
        assert env.now == pytest.approx(1.0)
        env.run(until=capped.done)
        assert env.now == pytest.approx(10.0 * 0.9 + (100 - 90) / 10.0, rel=1e-6)

    def test_departure_speeds_up_survivor(self):
        env, net = make_net(100.0)
        short = net.start_flow(25.0, ["l0"])   # shares 50/50, done at 0.5
        long = net.start_flow(75.0, ["l0"])
        env.run(until=short.done)
        assert env.now == pytest.approx(0.5)
        env.run(until=long.done)
        # long had 50 remaining at t=0.5, then gets full 100
        assert env.now == pytest.approx(1.0)

    def test_late_arrival_slows_existing(self):
        env, net = make_net(100.0)
        first = net.start_flow(100.0, ["l0"])

        def late(env, net):
            yield env.timeout(0.5)
            return net.start_flow(25.0, ["l0"])

        env.process(late(env, net))
        env.run(until=first.done)
        # first: 50 bytes by t=0.5 at rate 100; 25 more at rate 50 while the
        # late flow drains (done t=1.0); last 25 at full rate -> t=1.25
        assert env.now == pytest.approx(1.25)


class TestMultiLink:
    def test_flow_limited_by_slowest_link(self):
        env, net = make_net(100.0, 40.0)
        flow = net.start_flow(40.0, ["l0", "l1"])
        env.run(until=flow.done)
        assert env.now == pytest.approx(1.0)

    def test_memcpy_bottleneck_asymmetry(self):
        """DDR write (80) below DDR read (90): HBM->DDR slower than DDR->HBM."""
        env, net = make_net()
        net.add_link("ddr.read", 90.0)
        net.add_link("ddr.write", 80.0)
        net.add_link("hbm.read", 460.0)
        net.add_link("hbm.write", 380.0)
        d2h = net.start_flow(80.0, ["ddr.read", "hbm.write"])
        env.run(until=d2h.done)
        t_d2h = env.now
        h2d = net.start_flow(80.0, ["hbm.read", "ddr.write"])
        env.run(until=h2d.done)
        t_h2d = env.now - t_d2h
        assert t_h2d > t_d2h

    def test_cross_traffic_on_one_link(self):
        env, net = make_net(100.0, 100.0)
        both = net.start_flow(100.0, ["l0", "l1"])
        single = net.start_flow(50.0, ["l0"])
        env.run(until=single.done)
        assert env.now == pytest.approx(1.0)  # share 50/50 on l0
        env.run(until=both.done)
        assert env.now == pytest.approx(1.5)  # 50 left at full 100


class TestEdgeCases:
    def test_zero_byte_flow_completes_instantly(self):
        env, net = make_net(10.0)
        flow = net.start_flow(0.0, ["l0"])
        assert flow.done.triggered
        assert flow.finished_at == env.now

    def test_negative_bytes_rejected(self):
        env, net = make_net(10.0)
        with pytest.raises(SimulationError):
            net.start_flow(-1.0, ["l0"])

    def test_zero_weight_rejected(self):
        env, net = make_net(10.0)
        with pytest.raises(SimulationError):
            net.start_flow(1.0, ["l0"], weight=0.0)

    def test_unknown_link_rejected(self):
        env, net = make_net(10.0)
        with pytest.raises(SimulationError):
            net.start_flow(1.0, ["nope"])

    def test_duplicate_link_name_rejected(self):
        env, net = make_net(10.0)
        with pytest.raises(SimulationError):
            net.add_link("l0", 5.0)

    def test_cancel_flow_fails_its_event(self):
        env, net = make_net(10.0)
        flow = net.start_flow(100.0, ["l0"])
        net.cancel_flow(flow)
        assert flow.done.triggered and not flow.done.ok

    def test_counters(self):
        env, net = make_net(10.0)
        net.start_flow(5.0, ["l0"])
        net.start_flow(5.0, ["l0"])
        env.run()
        assert net.completed_flows == 2
        assert net.completed_bytes == pytest.approx(10.0)


class TestFluidProperties:
    @settings(max_examples=40, deadline=None)
    @given(sizes=st.lists(st.floats(min_value=1.0, max_value=1e6),
                          min_size=1, max_size=12),
           capacity=st.floats(min_value=1.0, max_value=1e6))
    def test_work_conservation_single_link(self, sizes, capacity):
        """Total service time equals total bytes / capacity when the link
        is continuously backlogged (all flows start together)."""
        env, net = make_net(capacity)
        flows = [net.start_flow(s, ["l0"]) for s in sizes]
        env.run()
        makespan = max(f.finished_at for f in flows)
        assert makespan == pytest.approx(sum(sizes) / capacity, rel=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=1, max_value=20),
           size=st.floats(min_value=1.0, max_value=1e5))
    def test_equal_flows_finish_together(self, n, size):
        env, net = make_net(100.0)
        flows = [net.start_flow(size, ["l0"]) for _ in range(n)]
        env.run()
        finishes = {round(f.finished_at, 9) for f in flows}
        assert len(finishes) == 1

    @settings(max_examples=30, deadline=None)
    @given(sizes=st.lists(st.floats(min_value=1.0, max_value=1e5),
                          min_size=2, max_size=8))
    def test_rates_never_exceed_capacity(self, sizes):
        env, net = make_net(50.0)
        for s in sizes:
            net.start_flow(s, ["l0"])
        total_rate = sum(f.rate for f in net.active_flows)
        assert total_rate <= 50.0 * (1 + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(size=st.floats(min_value=1.0, max_value=1e5),
           cap_rate=st.floats(min_value=0.1, max_value=1e4))
    def test_capped_flow_never_beats_its_cap(self, size, cap_rate):
        env, net = make_net(1e9)
        flow = net.start_flow(size, ["l0"], max_rate=cap_rate)
        env.run(until=flow.done)
        assert env.now >= size / cap_rate * (1 - 1e-9)
