"""Tests for the benchmark harness and the fast experiment definitions."""

import pytest

from repro.bench.experiments import (
    fig1_stream_bandwidth,
    fig7_memcpy_cost,
)
from repro.bench.harness import ExperimentResult, Scale, speedup_table
from repro.bench.report import format_table, render_experiment
from repro.units import GiB


class TestScale:
    def test_factors(self):
        assert Scale.FULL.factor == 1
        assert Scale.SMALL.factor == 16

    def test_capacities_scale_together(self):
        assert Scale.SMALL.mcdram == GiB
        assert Scale.SMALL.ddr == 6 * GiB
        assert Scale.FULL.mcdram == 16 * GiB

    def test_size_helper(self):
        assert Scale.MEDIUM.size(32 * GiB) == 8 * GiB


class TestSpeedupTable:
    def test_normalises_to_baseline(self):
        times = {"2GB": {"naive": 2.0, "multi-io": 1.0, "ddr-only": 4.0}}
        table = speedup_table(times)
        assert table["2GB"]["naive"] == 1.0
        assert table["2GB"]["multi-io"] == 2.0
        assert table["2GB"]["ddr-only"] == 0.5

    def test_custom_baseline(self):
        times = {"x": {"a": 1.0, "b": 3.0}}
        assert speedup_table(times, baseline="b")["x"]["a"] == 3.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["col", "value"], [["a", 1.5], ["bb", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "1.5" in text and "2.25" in text

    def test_render_experiment(self):
        result = ExperimentResult(
            figure="FigX", description="demo", unit="speedup",
            series={"2GB": {"A": 1.0, "B": 2.0}},
            notes={"k": "v"})
        text = render_experiment(result)
        assert "FigX" in text and "demo" in text
        assert "note: k = v" in text

    def test_series_names_preserve_order(self):
        result = ExperimentResult(
            figure="F", description="", unit="",
            series={"x": {"B": 1.0, "A": 2.0}, "y": {"C": 3.0}})
        assert result.series_names() == ["B", "A", "C"]


class TestFastExperiments:
    """The two experiments cheap enough for the unit-test suite."""

    def test_fig1_shape(self):
        result = fig1_stream_bandwidth(threads=32)
        assert set(result.series) == {"copy", "scale", "add", "triad"}
        for row in result.series.values():
            assert row["mcdram"] > 4 * row["ddr4"]

    def test_fig7_shape(self):
        # the direction asymmetry needs enough threads to saturate the
        # DDR4 ports (64 x 5 GB/s >> 80 GB/s)
        result = fig7_memcpy_cost(scale=Scale.SMALL, block_gb=(1, 4),
                                  threads=64)
        assert list(result.series) == ["1GB", "4GB"]
        for row in result.series.values():
            assert row["hbm-to-ddr"] > row["ddr-to-hbm"]
        assert (result.series["4GB"]["ddr-to-hbm"]
                > result.series["1GB"]["ddr-to-hbm"])
