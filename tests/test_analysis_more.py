"""Additional unit tests for the analysis module."""

import pytest

from repro import analysis
from repro.config import knl_config
from repro.units import GiB, MiB


class TestKernelTime:
    def test_compute_bound(self):
        t = analysis.kernel_time(70e9, 1e6, core_flops=35e9,
                                 effective_bandwidth=1e12)
        assert t == pytest.approx(2.0)

    def test_memory_bound(self):
        t = analysis.kernel_time(1e3, 10e9, core_flops=35e9,
                                 effective_bandwidth=5e9)
        assert t == pytest.approx(2.0)

    def test_zero_everything(self):
        assert analysis.kernel_time(0.0, 0.0, core_flops=35e9,
                                    effective_bandwidth=1.0) == 0.0


class TestMoveTime:
    def test_bottleneck_is_min_of_three(self):
        t = analysis.move_time(100.0, src_read_share=50.0,
                               dst_write_share=10.0, copy_cap=25.0)
        assert t == pytest.approx(10.0)

    def test_fixed_costs_added(self):
        t = analysis.move_time(100.0, src_read_share=100.0,
                               dst_write_share=100.0, copy_cap=100.0,
                               alloc_cost=0.5, free_cost=0.25, latency=0.25)
        assert t == pytest.approx(2.0)


class TestAnalyticStencil:
    def make(self, **kwargs):
        cfg = knl_config(mcdram_capacity=GiB, ddr_capacity=6 * GiB)
        defaults = dict(machine=cfg, block_bytes=4 * MiB,
                        n_chares=512, flops_per_task=1e9)
        defaults.update(kwargs)
        return analysis.AnalyticStencil(**defaults)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            self.make().iteration_time(1.5)

    def test_all_hbm_faster_than_all_ddr(self):
        model = self.make()
        assert model.iteration_time(1.0) < model.iteration_time(0.0)

    def test_iteration_time_monotone_in_hbm_fraction(self):
        model = self.make()
        times = [model.iteration_time(f) for f in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert times == sorted(times, reverse=True)

    def test_wrapper_function_agrees(self):
        model = self.make()
        cfg = knl_config(mcdram_capacity=GiB, ddr_capacity=6 * GiB)
        wrapped = analysis.stencil_iteration_time(
            cfg, 4 * MiB, 512, 1e9, 0.5)
        assert wrapped == pytest.approx(model.iteration_time(0.5))

    def test_movement_floor_scales_with_total(self):
        small = self.make(n_chares=256)
        large = self.make(n_chares=512)
        assert large.movement_floor() == pytest.approx(
            2 * small.movement_floor())

    def test_prefetch_floor_at_least_compute(self):
        model = self.make(flops_per_task=1e12)  # compute-heavy
        per_task = 1e12 / model.machine.core_flops
        assert model.prefetch_iteration_floor() >= \
            per_task * (model.n_chares / model.pes) * 0.999
