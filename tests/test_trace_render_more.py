"""Additional rendering tests: glyph selection and bucket dominance."""

from repro.sim.environment import Environment
from repro.trace.events import TraceCategory
from repro.trace.render import render_timeline
from repro.trace.tracer import Tracer


def make_tracer(events):
    tracer = Tracer(Environment())
    for lane, cat, start, end in events:
        tracer.record(lane, cat, start, end)
    return tracer


class TestGlyphs:
    def test_dominant_category_wins_bucket(self):
        # Over [0, 10): execute covers 9s, fetch 1s -> every bucket shows '#'
        tracer = make_tracer([
            ("pe0", TraceCategory.EXECUTE, 0.0, 9.0),
            ("pe0", TraceCategory.IO_FETCH, 9.0, 10.0),
        ])
        art = render_timeline(tracer, width=10)
        row = next(l for l in art.splitlines() if l.startswith("pe0"))
        bars = row.split("|")[1]
        assert bars == "#" * 9 + "F"

    def test_idle_glyph_for_gaps(self):
        tracer = make_tracer([
            ("pe0", TraceCategory.EXECUTE, 0.0, 2.0),
            ("pe0", TraceCategory.EXECUTE, 8.0, 10.0),
        ])
        art = render_timeline(tracer, width=10)
        row = next(l for l in art.splitlines() if l.startswith("pe0"))
        bars = row.split("|")[1]
        assert bars[4] == "."
        assert bars[0] == "#" and bars[-1] == "#"

    def test_each_category_has_unique_glyph(self):
        from repro.trace.render import _GLYPHS
        assert len(set(_GLYPHS.values())) == len(_GLYPHS)

    def test_multiple_lanes_aligned(self):
        tracer = make_tracer([
            ("pe0", TraceCategory.EXECUTE, 0.0, 1.0),
            ("io11", TraceCategory.IO_EVICT, 0.0, 1.0),
        ])
        art = render_timeline(tracer, width=20)
        rows = [l for l in art.splitlines() if "|" in l]
        starts = {row.index("|") for row in rows}
        assert len(starts) == 1  # bars line up
