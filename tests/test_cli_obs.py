"""CLI coverage for the observability surface: spmv parity, --spans,
``repro report`` (determinism included) and ``repro trend``."""

import json

import pytest

from repro.cli import main


class TestSpmvCommand:
    """SpMV now has the same CLI surface as stencil/matmul (S2)."""

    ARGS = ["spmv", "--strategy", "multi-io", "--cores", "8",
            "--mcdram", "128MiB", "--ddr", "1GiB",
            "--block-rows", "16", "--block-bytes", "4MiB",
            "--iterations", "1"]

    def test_basic_run(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "strategy        : multi-io" in out
        assert "block rows      : 16" in out

    def test_metrics_flag(self, capsys):
        assert main([*self.ARGS, "--metrics", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "repro_moved_bytes_total" in out

    def test_metrics_json_format(self, capsys):
        assert main([*self.ARGS, "--metrics", "--format", "json"]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        assert json.loads(out[start:])

    def test_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main([*self.ARGS, "--metrics", "--trace-out",
                     str(trace)]) == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        assert any(e["ph"] == "C" for e in doc["traceEvents"])

    def test_race_flag(self, capsys):
        assert main([*self.ARGS, "--race"]) == 0
        assert "racesan" in capsys.readouterr().out

    def test_race_subcommand_accepts_spmv(self, capsys):
        code = main(["race", "--app", "spmv", "--block-rows", "8",
                     "--block-bytes", "4MiB", "--iterations", "1",
                     "--explore-schedules", "2"])
        assert code == 0
        assert "explored 2 schedule(s): 0 failing" in capsys.readouterr().out

    def test_metrics_subcommand_accepts_spmv(self, capsys):
        code = main(["metrics", "--app", "spmv", "--cores", "8",
                     "--mcdram", "128MiB", "--ddr", "1GiB",
                     "--block-rows", "8", "--block-bytes", "4MiB",
                     "--iterations", "1", "--format", "prom"])
        assert code == 0
        assert 'repro_tasks_readied{app="spmv"' in capsys.readouterr().out


class TestSpansFlag:
    def test_stencil_spans_prints_critical_path(self, capsys):
        code = main(["stencil", "--strategy", "multi-io", "--cores", "8",
                     "--mcdram", "128MiB", "--ddr", "1GiB",
                     "--total", "256MiB", "--block", "16MiB",
                     "--iterations", "1", "--spans"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== critical path: stencil/multi-io ==" in out
        assert "compute" in out and "scheduling" in out
        assert "longest chains" in out

    def test_spans_merge_into_trace_without_metrics(self, tmp_path,
                                                    capsys):
        trace = tmp_path / "t.json"
        code = main(["spmv", "--strategy", "multi-io", "--cores", "8",
                     "--mcdram", "128MiB", "--ddr", "1GiB",
                     "--block-rows", "16", "--block-bytes", "4MiB",
                     "--iterations", "1", "--spans",
                     "--trace-out", str(trace)])
        assert code == 0
        capsys.readouterr()
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("cat", "").startswith("span.") for e in events)
        assert any(e["ph"] == "s" for e in events)
        assert any(e["ph"] == "f" for e in events)


class TestReportCommand:
    def run_report(self, tmp_path, out_name):
        out = tmp_path / out_name
        code = main(["report", "--figures", "fig1", "--replicates", "2",
                     "--baseline", "ddr4",
                     "--cache-dir", str(tmp_path / "cache"),
                     "-o", str(out)])
        return code, out

    def test_report_runs_and_writes_html(self, tmp_path, capsys):
        code, out = self.run_report(tmp_path, "r.html")
        assert code == 0
        stdout = capsys.readouterr().out
        assert "Fig1" in stdout and "replicates=2" in stdout
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html

    def test_warm_cache_rerun_is_byte_identical(self, tmp_path, capsys):
        _, first = self.run_report(tmp_path, "r1.html")
        _, second = self.run_report(tmp_path, "r2.html")
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_unknown_figure_rejected(self, tmp_path, capsys):
        code = main(["report", "--figures", "fig99",
                     "-o", str(tmp_path / "r.html")])
        assert code == 2
        assert "unknown figure" in capsys.readouterr().err


class TestTrendCommand:
    def test_append_then_render(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        out = tmp_path / "trend.html"
        assert main(["trend", "append", "--commit", "cafe01",
                     "--history", str(history)]) == 0
        assert main(["trend", "render", "--history", str(history),
                     "-o", str(out)]) == 0
        capsys.readouterr()
        # the repo's committed BENCH files feed the record
        record = json.loads(history.read_text().splitlines()[0])
        assert record["commit"] == "cafe01"
        assert "simcore" in record["benches"]
        assert "<svg" in out.read_text()

    def test_append_is_idempotent(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        for _ in range(2):
            assert main(["trend", "append", "--commit", "c1",
                         "--history", str(history)]) == 0
        capsys.readouterr()
        assert len(history.read_text().splitlines()) == 1

    def test_render_empty_history(self, tmp_path, capsys):
        out = tmp_path / "trend.html"
        assert main(["trend", "render",
                     "--history", str(tmp_path / "none.jsonl"),
                     "-o", str(out)]) == 0
        capsys.readouterr()
        assert "No bench history yet" in out.read_text()


class TestArgumentValidation:
    def test_spmv_bad_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["spmv", "--strategy", "wishful"])

    def test_trend_requires_action(self):
        with pytest.raises(SystemExit):
            main(["trend"])
