"""Flight recorder: cadence snapshots, ring capacity, clean stop."""

import pytest

from repro.errors import SimulationError
from repro.metrics.recorder import FlightRecorder, Snapshot
from repro.metrics.registry import MetricsRegistry
from repro.sim.environment import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def registry(env):
    return MetricsRegistry(clock=lambda: env.now)


class TestLifecycle:
    def test_start_takes_t0_snapshot(self, env, registry):
        rec = FlightRecorder(env, registry, cadence=0.1).start()
        assert len(rec) == 1
        assert rec.snapshots[0].time == 0.0
        rec.stop()

    def test_cadence_snapshots_on_sim_clock(self, env, registry):
        rec = FlightRecorder(env, registry, cadence=0.1).start()
        env.run(until=0.55)
        # t=0 plus ticks at 0.1 .. 0.5
        assert rec.snapshots_taken == 6
        rec.stop()
        times = [s.time for s in rec.snapshots]
        assert times[1] == pytest.approx(0.1)
        assert times[-1] == pytest.approx(0.55)  # final stop() snapshot

    def test_stop_retires_the_process(self, env, registry):
        rec = FlightRecorder(env, registry, cadence=0.1).start()
        env.run(until=0.25)
        rec.stop()
        taken = rec.snapshots_taken
        # the queue must drain: an unbounded run() returns because the
        # cadence process no longer re-arms (the shutdown-hang hazard);
        # the kill is delivered through the event queue, so `running`
        # flips only once the environment processes it
        env.run()
        assert not rec.running
        assert rec.snapshots_taken == taken

    def test_stop_is_idempotent(self, env, registry):
        rec = FlightRecorder(env, registry, cadence=0.1).start()
        rec.stop()
        taken = rec.snapshots_taken
        rec.stop()
        assert rec.snapshots_taken == taken

    def test_double_start_rejected(self, env, registry):
        rec = FlightRecorder(env, registry, cadence=0.1).start()
        with pytest.raises(SimulationError):
            rec.start()
        rec.stop()

    def test_bad_parameters_rejected(self, env, registry):
        with pytest.raises(SimulationError):
            FlightRecorder(env, registry, cadence=0.0)
        with pytest.raises(SimulationError):
            FlightRecorder(env, registry, capacity=1)


class TestRing:
    def test_capacity_bounds_the_ring(self, env, registry):
        rec = FlightRecorder(env, registry, cadence=0.1, capacity=4).start()
        env.run(until=2.0)
        rec.stop()
        assert len(rec) == 4
        assert rec.snapshots_taken > 4
        # oldest snapshots fell off the front
        assert rec.snapshots[0].time > 0.0

    def test_series_tracks_a_counter(self, env, registry):
        counter = registry.counter("repro_events_total")
        rec = FlightRecorder(env, registry, cadence=0.1).start()

        def bump():
            while True:
                yield env.timeout(0.1)
                counter.inc()

        env.process(bump(), name="bumper")
        env.run(until=0.35)
        rec.stop()
        points = rec.series("repro_events_total")
        assert points[0] == (0.0, 0.0)
        assert points[-1][1] == 3.0

    def test_sum_series_is_label_blind(self, env, registry):
        registry.counter("repro_events_total", lane="a").inc(1)
        registry.counter("repro_events_total", lane="b").inc(2)
        rec = FlightRecorder(env, registry, cadence=0.1).start()
        rec.stop()
        assert rec.sum_series("repro_events_total")[0][1] == 3.0

    def test_deltas_pairs_consecutive_snapshots(self, env, registry):
        rec = FlightRecorder(env, registry, cadence=0.1).start()
        env.run(until=0.25)
        rec.stop()
        pairs = list(rec.deltas())
        assert len(pairs) == len(rec) - 1
        for prev, cur in pairs:
            assert cur.time >= prev.time


class TestCallbacks:
    def test_on_snapshot_receives_previous(self, env, registry):
        calls = []
        rec = FlightRecorder(env, registry, cadence=0.1,
                             on_snapshot=lambda s, p: calls.append((s, p)))
        rec.start()
        env.run(until=0.15)
        rec.stop()
        assert calls[0][1] is None             # t=0 has no predecessor
        assert isinstance(calls[1][1], Snapshot)
        assert calls[1][1] is calls[0][0]


class TestSnapshotHelpers:
    def test_get_and_sum_prefix(self):
        snap = Snapshot(1.0, {"repro_a{x=\"1\"}": 2.0,
                              "repro_a{x=\"2\"}": 3.0, "repro_b": 7.0})
        assert snap.get("repro_b") == 7.0
        assert snap.get("missing", -1.0) == -1.0
        assert snap.sum_prefix("repro_a") == 5.0
