"""SARIF 2.1.0 exporter: round-trip, canonical form, CLI integration."""

import json
import subprocess
import sys

from repro.lint.findings import Finding, Severity
from repro.lint.sarif import SARIF_VERSION, findings_from_sarif, to_sarif

FINDINGS = [
    Finding(rule="REP201", severity=Severity.ERROR,
            message="dependence 'grid' written without writeonly intent",
            file="src/app.py", line=42, chare="StencilChare",
            entry="exchange"),
    Finding(rule="REP310", severity=Severity.WARNING,
            message="site dead after phase 1 but still resident",
            file="src/app.py", line=7, chare="StencilChare"),
    Finding(rule="REP104", severity=Severity.WARNING,
            message="declared dependence never used", file="b.py", line=3),
]


class TestDocumentShape:
    def test_version_and_schema(self):
        doc = json.loads(to_sarif(FINDINGS))
        assert doc["version"] == SARIF_VERSION
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(doc["runs"]) == 1

    def test_rules_catalog_covers_only_present_rules(self):
        doc = json.loads(to_sarif(FINDINGS))
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert [r["id"] for r in driver["rules"]] == \
            ["REP104", "REP201", "REP310"]
        for rule in driver["rules"]:
            assert rule["fullDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in \
                ("error", "warning")

    def test_results_sorted_by_location(self):
        doc = json.loads(to_sarif(FINDINGS))
        results = doc["runs"][0]["results"]
        keys = [(r["locations"][0]["physicalLocation"]["artifactLocation"]
                 ["uri"],
                 r["locations"][0]["physicalLocation"]["region"]["startLine"])
                for r in results]
        assert keys == sorted(keys)

    def test_levels_match_severity(self):
        doc = json.loads(to_sarif(FINDINGS))
        by_rule = {r["ruleId"]: r["level"]
                   for r in doc["runs"][0]["results"]}
        assert by_rule == {"REP201": "error", "REP310": "warning",
                           "REP104": "warning"}

    def test_canonical_output_is_deterministic(self):
        assert to_sarif(FINDINGS) == to_sarif(reversed(FINDINGS))
        assert to_sarif(FINDINGS).endswith("\n")

    def test_zero_line_clamped_to_one(self):
        finding = Finding(rule="REP104", severity=Severity.WARNING,
                          message="m", file="f.py", line=0)
        doc = json.loads(to_sarif([finding]))
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]["region"]
        assert region["startLine"] == 1


class TestRoundTrip:
    def test_findings_survive_the_trip(self):
        restored = findings_from_sarif(to_sarif(FINDINGS))
        assert sorted(restored, key=lambda f: (f.file, f.line)) == \
            sorted(FINDINGS, key=lambda f: (f.file, f.line))

    def test_empty_report_round_trips(self):
        assert findings_from_sarif(to_sarif([])) == []

    def test_scope_rides_the_property_bag(self):
        doc = json.loads(to_sarif([FINDINGS[0]]))
        props = doc["runs"][0]["results"][0]["properties"]
        assert props == {"chare": "StencilChare", "entry": "exchange"}


class TestCLI:
    def _lint(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *args],
            capture_output=True, text=True, env={"PYTHONPATH": "src"})

    def test_sarif_format_on_clean_tree(self):
        proc = self._lint("--format", "sarif", "--no-cache",
                          "src/repro/apps/spmv.py")
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["version"] == SARIF_VERSION
        assert doc["runs"][0]["results"] == []
        # the human summary goes to stderr, keeping stdout pure SARIF
        assert "0 error(s)" in proc.stderr

    def test_sarif_format_with_findings_exits_one(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "from repro.runtime.chare import Chare\n"
            "from repro.runtime.entry import entry\n\n\n"
            "class C(Chare):\n"
            "    @entry\n"
            "    def setup(self, barrier):\n"
            "        self.a = self.declare_block('a', 1024)\n"
            "        barrier.contribute()\n\n"
            "    @entry(prefetch=True, readonly=['a'])\n"
            "    def go(self, red):\n"
            "        result = yield from self.kernel(\n"
            "            flops=1.0, reads=[self.a], writes=[self.a])\n"
            "        red.contribute(result.duration)\n")
        proc = self._lint("--format", "sarif", "--no-cache", str(bad))
        assert proc.returncode == 1
        restored = findings_from_sarif(proc.stdout)
        assert any(f.rule == "REP102" for f in restored)
