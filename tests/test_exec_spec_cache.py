"""repro.exec spec canonicalization, fingerprinting and the result cache."""

import json

import pytest

from repro.errors import ExperimentError
from repro.exec.cache import (ENTRY_SCHEMA, ResultCache, cache_stats,
                              clear_cache)
from repro.exec.fingerprint import code_fingerprint
from repro.exec.spec import RunSpec, canonical_json, stable_seed


class TestCanonicalJson:
    def test_sorted_keys_and_compact(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_dict_insertion_order_is_irrelevant(self):
        assert canonical_json({"x": 1, "y": 2}) == canonical_json(
            {"y": 2, "x": 1})

    def test_tuples_normalize_to_lists(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_integral_floats_collapse_to_int(self):
        assert canonical_json({"n": 2.0}) == canonical_json({"n": 2})
        assert canonical_json(0.5) == "0.5"

    def test_non_finite_floats_are_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ExperimentError, match="non-finite"):
                canonical_json({"x": bad})

    def test_non_string_keys_are_rejected(self):
        with pytest.raises(ExperimentError, match="non-string key"):
            canonical_json({1: "x"})

    def test_unsupported_types_are_rejected_with_path(self):
        with pytest.raises(ExperimentError, match=r"\$\.a\[0\]"):
            canonical_json({"a": [object()]})


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("fig8", 2) == stable_seed("fig8", 2)

    def test_different_parts_differ(self):
        assert stable_seed("fig8", 2) != stable_seed("fig8", 3)

    def test_respects_bit_width(self):
        for bits in (8, 32, 48):
            assert 0 <= stable_seed("x", bits=bits) < (1 << bits)


class TestRunSpec:
    def test_key_ignores_cost_and_label(self):
        a = RunSpec("stencil", {"total": 1024}, cost=1.0, label="a")
        b = RunSpec("stencil", {"total": 1024}, cost=99.0, label="b")
        assert a.key() == b.key()

    def test_key_distinguishes_params_and_kind(self):
        base = RunSpec("stencil", {"total": 1024})
        assert base.key() != RunSpec("stencil", {"total": 2048}).key()
        assert base.key() != RunSpec("matmul", {"total": 1024}).key()

    def test_param_order_is_irrelevant(self):
        a = RunSpec("s", {"x": 1, "y": 2})
        b = RunSpec("s", {"y": 2, "x": 1})
        assert a.canonical_json() == b.canonical_json()

    def test_display_prefers_label(self):
        assert RunSpec("s", {}, label="fig1/copy").display() == "fig1/copy"
        anon = RunSpec("s", {})
        assert anon.display().startswith("s:")


class TestFingerprint:
    def test_stable_for_unchanged_tree(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        f1 = code_fingerprint(tmp_path, refresh=True)
        f2 = code_fingerprint(tmp_path, refresh=True)
        assert f1 == f2

    def test_changes_when_source_changes(self, tmp_path):
        mod = tmp_path / "a.py"
        mod.write_text("x = 1\n")
        before = code_fingerprint(tmp_path, refresh=True)
        mod.write_text("x = 2\n")
        after = code_fingerprint(tmp_path, refresh=True)
        assert before != after

    def test_memo_requires_refresh_to_see_edits(self, tmp_path):
        mod = tmp_path / "a.py"
        mod.write_text("x = 1\n")
        before = code_fingerprint(tmp_path, refresh=True)
        mod.write_text("x = 2\n")
        assert code_fingerprint(tmp_path) == before
        assert code_fingerprint(tmp_path, refresh=True) != before

    def test_pycache_is_ignored(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = code_fingerprint(tmp_path, refresh=True)
        pyc = tmp_path / "__pycache__"
        pyc.mkdir()
        (pyc / "a.cpython-311.py").write_text("junk\n")
        assert code_fingerprint(tmp_path, refresh=True) == before


class TestResultCache:
    def spec(self, **params):
        return RunSpec("selftest", params or {"value": 7})

    def test_roundtrip_is_exact(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        spec = self.spec()
        result = {"bandwidth": 1.0 / 3.0, "count": 5}
        cache.put(spec, result, elapsed_s=0.25)
        entry = cache.get(spec)
        assert entry["result"] == result
        assert entry["result"]["bandwidth"] == 1.0 / 3.0  # bit-exact float
        assert entry["elapsed_s"] == 0.25

    def test_miss_on_absent_entry(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        assert cache.get(self.spec()) is None
        assert cache.session_stats() == {"hits": 0, "misses": 1, "stores": 0}

    def test_fingerprint_change_invalidates(self, tmp_path):
        old = ResultCache(root=tmp_path, fingerprint="a" * 64)
        old.put(self.spec(), {"v": 1})
        fresh = ResultCache(root=tmp_path, fingerprint="b" * 64)
        assert fresh.get(self.spec()) is None
        # the old generation stays on disk for rollback re-runs
        assert old.get(self.spec())["result"] == {"v": 1}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        spec = self.spec()
        cache.put(spec, {"v": 1})
        cache.path(spec).write_text("{ not json")
        assert cache.get(spec) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        spec = self.spec()
        cache.put(spec, {"v": 1})
        entry = json.loads(cache.path(spec).read_text())
        entry["schema"] = ENTRY_SCHEMA + 1
        cache.path(spec).write_text(json.dumps(entry))
        assert cache.get(spec) is None

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="a" * 64)
        cache.put(self.spec(value=1), {"v": 1})
        cache.put(self.spec(value=2), {"v": 2})
        stats = cache_stats(tmp_path)
        assert stats["total_entries"] == 2
        assert stats["total_bytes"] > 0
        assert stats["generations"]["a" * 16]["entries"] == 2
        assert clear_cache(tmp_path) == 2
        assert cache_stats(tmp_path)["total_entries"] == 0
