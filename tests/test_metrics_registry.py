"""Unit tests for MetricsRegistry and the hooks slot."""

import pytest

from repro.metrics import hooks
from repro.metrics.instruments import Counter, Gauge, PolledGauge
from repro.metrics.registry import MetricsRegistry


class TestChildMemoization:
    def test_same_labels_same_child(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_moves_total", src="mcdram", dst="ddr4")
        b = reg.counter("repro_moves_total", src="mcdram", dst="ddr4")
        assert a is b

    def test_kwarg_order_does_not_split_children(self):
        # the fast-path memo keys on raw kwargs order; the slow path must
        # still unify differently-ordered call sites onto one child
        reg = MetricsRegistry()
        a = reg.counter("repro_moves_total", src="mcdram", dst="ddr4")
        b = reg.counter("repro_moves_total", dst="ddr4", src="mcdram")
        assert a is b

    def test_different_labels_different_children(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_moves_total", src="mcdram")
        b = reg.counter("repro_moves_total", src="ddr4")
        assert a is not b
        assert len(reg) == 2

    def test_base_labels_stamped_on_every_child(self):
        reg = MetricsRegistry(strategy="multi-io", app="stencil")
        c = reg.counter("repro_moves_total", src="mcdram")
        assert dict(c.labels) == {"app": "stencil", "src": "mcdram",
                                  "strategy": "multi-io"}

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_thing")
        with pytest.raises(TypeError):
            reg.gauge("repro_thing")

    def test_polled_vs_push_gauge_conflict(self):
        reg = MetricsRegistry()
        reg.observe("repro_depth", lambda: 1.0)
        with pytest.raises(TypeError):
            reg.gauge("repro_depth")

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad-name")
        with pytest.raises(ValueError):
            reg.counter("9starts_with_digit")

    def test_get_does_not_create(self):
        reg = MetricsRegistry()
        assert reg.get("repro_moves_total") is None
        reg.counter("repro_moves_total")
        assert isinstance(reg.get("repro_moves_total"), Counter)
        assert len(reg) == 1


class TestClockWiring:
    def test_gauges_share_the_registry_clock(self):
        now = [0.0]
        reg = MetricsRegistry(clock=lambda: now[0])
        g = reg.gauge("repro_depth")
        g.set(10)
        now[0] = 2.0
        g.set(0)
        now[0] = 4.0
        assert g.time_weighted_mean() == pytest.approx(5.0)

    def test_timer_uses_clock(self):
        now = [0.0]
        reg = MetricsRegistry(clock=lambda: now[0])
        t = reg.timer("repro_span_seconds")
        mark = t.start()
        now[0] = 0.125
        assert t.stop(mark) == pytest.approx(0.125)


class TestCollection:
    def test_total_sums_a_family(self):
        reg = MetricsRegistry()
        reg.counter("repro_moves_total", src="a").inc(2)
        reg.counter("repro_moves_total", src="b").inc(3)
        reg.counter("repro_other_total").inc(100)
        assert reg.total("repro_moves_total") == 5.0

    def test_flatten_samples_polled_gauges(self):
        backing = [7]
        reg = MetricsRegistry()
        reg.observe("repro_depth", lambda: backing[0])
        flat = reg.flatten()
        assert flat["repro_depth"] == 7.0
        backing[0] = 9
        assert reg.flatten()["repro_depth"] == 9.0

    def test_flatten_histogram_contributes_count_and_sum(self):
        reg = MetricsRegistry()
        reg.histogram("repro_lat_seconds", src="a").observe(0.5)
        flat = reg.flatten()
        assert flat['repro_lat_seconds_count{src="a"}'] == 1.0
        assert flat['repro_lat_seconds_sum{src="a"}'] == 0.5

    def test_instruments_sorted(self):
        reg = MetricsRegistry()
        reg.counter("repro_b")
        reg.counter("repro_a")
        assert [i.name for i in reg.instruments()] == ["repro_a", "repro_b"]


class TestHooksSlot:
    def test_default_is_none(self):
        assert hooks.registry is None

    def test_install_uninstall_cycle(self):
        reg = MetricsRegistry()
        hooks.install(reg)
        try:
            assert hooks.registry is reg
            # re-installing the same registry is fine
            hooks.install(reg)
            with pytest.raises(RuntimeError):
                hooks.install(MetricsRegistry())
        finally:
            hooks.uninstall(reg)
        assert hooks.registry is None
        # idempotent
        hooks.uninstall(reg)

    def test_uninstall_of_foreign_registry_is_a_noop(self):
        reg = MetricsRegistry()
        hooks.install(reg)
        try:
            hooks.uninstall(MetricsRegistry())
            assert hooks.registry is reg
        finally:
            hooks.uninstall(reg)


def test_polled_and_push_gauge_kinds():
    reg = MetricsRegistry()
    assert isinstance(reg.observe("repro_a", lambda: 0.0), PolledGauge)
    g = reg.gauge("repro_b")
    assert isinstance(g, Gauge) and not isinstance(g, PolledGauge)
