"""Advanced fluid-model scenarios: the contention patterns the paper's
results hinge on, verified in isolation."""

import pytest

from repro.sim.environment import Environment
from repro.sim.fluid import FluidNetwork


def knl_like_network():
    env = Environment()
    net = FluidNetwork(env)
    net.add_link("ddr.read", 90.0)
    net.add_link("ddr.write", 80.0)
    net.add_link("hbm.read", 460.0)
    net.add_link("hbm.write", 380.0)
    return env, net


class TestPrefetchKernelInterference:
    def test_prefetch_traffic_slows_ddr_kernels(self):
        """Naive's DDR4 kernels and prefetch fetches share ddr.read."""
        env, net = knl_like_network()
        # a DDR-resident kernel reading 45 units
        kernel = net.start_flow(45.0, ["ddr.read"])
        # prefetch traffic: 45 units DDR->HBM
        fetch = net.start_flow(45.0, ["ddr.read", "hbm.write"])
        env.run()
        # both get 45 GB/s of ddr.read -> 1.0s; alone each would take 0.5s
        assert kernel.finished_at == pytest.approx(1.0)
        assert fetch.finished_at == pytest.approx(1.0)

    def test_hbm_kernels_unaffected_by_ddr_prefetch(self):
        env, net = knl_like_network()
        kernel = net.start_flow(380.0, ["hbm.read"])
        net.start_flow(80.0, ["ddr.read", "hbm.write"])
        env.run(until=kernel.done)
        # hbm.read uncontended: 380/460 s
        assert env.now == pytest.approx(380.0 / 460.0, rel=1e-6)

    def test_eviction_and_fetch_use_disjoint_ddr_ports(self):
        """Fetch (ddr.read) and evict (ddr.write) overlap fully."""
        env, net = knl_like_network()
        fetch = net.start_flow(90.0, ["ddr.read", "hbm.write"])
        evict = net.start_flow(80.0, ["hbm.read", "ddr.write"])
        env.run()
        assert fetch.finished_at == pytest.approx(1.0)
        assert evict.finished_at == pytest.approx(1.0)


class TestSerialVsParallelMovers:
    def test_one_capped_mover_cannot_saturate_ddr(self):
        """The single-IO-thread effect: one 5 GB/s memcpy pipe against a
        90 GB/s port leaves 94% of the bandwidth idle."""
        env, net = knl_like_network()
        flow = net.start_flow(5.0, ["ddr.read", "hbm.write"], max_rate=5.0)
        env.run(until=flow.done)
        assert env.now == pytest.approx(1.0)
        assert net.link("ddr.read").capacity == 90.0

    def test_64_capped_movers_reach_wire_speed(self):
        env, net = knl_like_network()
        flows = [net.start_flow(90.0 / 64, ["ddr.read", "hbm.write"],
                                max_rate=5.0) for _ in range(64)]
        env.run()
        # aggregate demand 64*5 = 320 > 90 -> port-bound: total bytes 90
        # at 90 GB/s = 1.0s
        assert max(f.finished_at for f in flows) == pytest.approx(1.0)


class TestUtilizationSnapshot:
    def test_snapshot_reports_all_links(self):
        env, net = knl_like_network()
        net.start_flow(10.0, ["ddr.read"])
        snap = net.snapshot()
        assert set(snap) == {"ddr.read", "ddr.write", "hbm.read",
                             "hbm.write"}
        assert snap["ddr.read"] == pytest.approx(1.0)  # lone flow, full port
        assert snap["hbm.read"] == 0.0

    def test_link_utilization_under_cap(self):
        env, net = knl_like_network()
        net.start_flow(10.0, ["ddr.read"], max_rate=9.0)
        assert net.link("ddr.read").utilization == pytest.approx(0.1)
