"""Exporters: Prometheus exposition, JSON, digest, report, narration."""

import json

import pytest

from repro.metrics.export import (DEFAULT_COUNTER_FAMILIES, counter_series,
                                  digest, narration_line, render_report,
                                  to_json, to_prometheus,
                                  validate_exposition)
from repro.metrics.recorder import FlightRecorder, Snapshot
from repro.metrics.registry import MetricsRegistry
from repro.sim.environment import Environment


@pytest.fixture
def registry():
    reg = MetricsRegistry(strategy="multi-io", app="stencil")
    reg.counter("repro_moves_total", "completed moves",
                src="mcdram", dst="ddr4").inc(5)
    reg.gauge("repro_moves_inflight", "moves in flight").set(2)
    h = reg.histogram("repro_move_latency_seconds", "move latency",
                      boundaries=(0.001, 0.01, 0.1),
                      src="mcdram", dst="ddr4")
    h.observe(0.005)
    h.observe(0.05)
    return reg


class TestPrometheus:
    def test_counter_gets_total_suffix_and_headers(self, registry):
        text = to_prometheus(registry)
        assert "# TYPE repro_moves_total counter" in text
        assert "# HELP repro_moves_total completed moves" in text
        # labels sorted, base labels stamped
        assert ('repro_moves_total{app="stencil",dst="ddr4",src="mcdram",'
                'strategy="multi-io"} 5') in text

    def test_total_suffix_not_doubled(self):
        reg = MetricsRegistry()
        reg.counter("repro_events_total").inc()
        text = to_prometheus(reg)
        assert "repro_events_total_total" not in text
        assert "repro_events_total 1" in text

    def test_gauge_type(self, registry):
        assert "# TYPE repro_moves_inflight gauge" in to_prometheus(registry)

    def test_histogram_buckets_cumulative(self, registry):
        text = to_prometheus(registry)
        assert "# TYPE repro_move_latency_seconds histogram" in text
        # 0.005 <= 0.01, 0.05 <= 0.1: cumulative 0, 1, 2, +Inf 2
        def bucket(le):
            return (f'repro_move_latency_seconds_bucket{{app="stencil",'
                    f'dst="ddr4",src="mcdram",strategy="multi-io",'
                    f'le="{le}"}}')
        assert f"{bucket('0.001')} 0" in text
        assert f"{bucket('0.01')} 1" in text
        assert f"{bucket('0.1')} 2" in text
        assert f"{bucket('+Inf')} 2" in text
        assert "repro_move_latency_seconds_count" in text
        assert "repro_move_latency_seconds_sum" in text

    def test_exposition_validates(self, registry):
        assert validate_exposition(to_prometheus(registry)) == []

    def test_validator_flags_garbage(self):
        bad = validate_exposition("not a metric line\nrepro_ok 1\n# BAD x\n")
        assert "not a metric line" in bad
        assert "# BAD x" in bad
        assert "repro_ok 1" not in bad

    def test_escaping_label_values(self):
        reg = MetricsRegistry()
        reg.counter("repro_c", label='quo"te\\slash').inc()
        text = to_prometheus(reg)
        assert validate_exposition(text) == []


class TestJson:
    def test_round_trip_instruments(self, registry):
        doc = json.loads(to_json(registry))
        assert doc["schema"] == 1
        by_name = {r["name"]: r for r in doc["instruments"]}
        assert by_name["repro_moves_total"]["value"] == 5.0
        assert by_name["repro_moves_total"]["kind"] == "counter"
        assert by_name["repro_moves_inflight"]["high_water"] == 2.0
        hist = by_name["repro_move_latency_seconds"]
        assert hist["count"] == 2
        assert hist["min"] == 0.005
        assert hist["max"] == 0.05

    def test_empty_histogram_serializes_nulls(self):
        reg = MetricsRegistry()
        reg.histogram("repro_lat_seconds")
        doc = json.loads(to_json(reg))
        rec = doc["instruments"][0]
        assert rec["count"] == 0
        assert rec["p50"] is None

    def test_snapshots_included_with_recorder(self, registry):
        env = Environment()
        rec = FlightRecorder(env, registry, cadence=0.5).start()
        rec.stop()
        doc = json.loads(to_json(registry, rec))
        assert doc["cadence"] == 0.5
        assert len(doc["snapshots"]) == len(rec)
        assert doc["snapshots"][0]["time"] == 0.0


class TestDigest:
    def test_families_collapse(self, registry):
        d = digest(registry)
        assert d["repro_moves_total"] == 5.0
        assert d["repro_moves_inflight_hwm"] == 2.0
        assert d["repro_move_latency_seconds_count"] == 2.0
        assert "repro_move_latency_seconds_p95" in d

    def test_counter_family_sums_labels(self):
        reg = MetricsRegistry()
        reg.counter("repro_evictions_total", reason="demand").inc(2)
        reg.counter("repro_evictions_total", reason="watermark").inc(3)
        assert digest(reg)["repro_evictions_total"] == 5.0

    def test_empty_histogram_has_no_percentiles(self):
        reg = MetricsRegistry()
        reg.histogram("repro_lat_seconds")
        d = digest(reg)
        assert d["repro_lat_seconds_count"] == 0.0
        assert "repro_lat_seconds_p50" not in d

    def test_every_value_is_float(self):
        # regression: int-valued instruments (byte counters, byte-gauge
        # high-water marks) used to leak ints into the digest, so
        # BENCH_*.json serialized "12" next to "12.0" across snapshots
        reg = MetricsRegistry()
        reg.counter("repro_moved_bytes_total").inc(4096)          # int
        reg.gauge("repro_hbm_used_bytes").set(1 << 20)            # int
        reg.histogram("repro_block_bytes").observe(512)           # int
        d = digest(reg)
        assert d["repro_hbm_used_bytes_hwm"] == 1048576.0
        for key, value in d.items():
            assert type(value) is float, f"{key} is {type(value).__name__}"

    def test_float_digest_survives_json_round_trip(self):
        reg = MetricsRegistry()
        reg.gauge("repro_hbm_used_bytes").set(3)
        dumped = json.dumps(digest(reg), sort_keys=True)
        assert json.loads(dumped)["repro_hbm_used_bytes_hwm"] == 3.0
        assert "3.0" in dumped


class TestCounterSeries:
    def test_families_summed_over_labels(self):
        env = Environment()
        reg = MetricsRegistry(clock=lambda: env.now)
        reg.observe("repro_pe_wait_depth", lambda: 2.0, pe="0")
        reg.observe("repro_pe_wait_depth", lambda: 3.0, pe="1")
        rec = FlightRecorder(env, reg, cadence=0.5).start()
        rec.stop()
        series = counter_series(rec)
        assert series["repro_pe_wait_depth"][0] == (0.0, 5.0)
        # absent families are omitted, not empty lists
        assert "repro_hbm_used_bytes" not in series

    def test_default_families_are_counterworthy(self):
        assert "repro_hbm_used_bytes" in DEFAULT_COUNTER_FAMILIES


class TestNarration:
    def test_line_shape_and_deltas(self):
        prev = Snapshot(0.0, {"repro_prefetch_issued_total": 1.0})
        snap = Snapshot(0.5, {
            "repro_prefetch_issued_total": 4.0,
            'repro_mem_used_bytes{tier="mcdram"}': 512.0,
            "repro_pe_wait_depth": 2.0,
        })
        line = narration_line(snap, prev, hbm_capacity=1024,
                              hbm_tier="mcdram")
        assert "hbm= 50%" in line
        assert "fetches=4(+3)" in line
        assert "waitq=2" in line

    def test_without_tier_falls_back_to_pushed_gauge(self):
        snap = Snapshot(0.0, {"repro_hbm_used_bytes": 256.0})
        line = narration_line(snap, None, hbm_capacity=1024)
        assert "hbm= 25%" in line

    def test_without_capacity_prints_bytes(self):
        snap = Snapshot(0.0, {"repro_hbm_used_bytes": 1024.0})
        assert "1.00KiB" in narration_line(snap, None)


class TestReport:
    def test_sections_and_base_label_stripping(self, registry):
        env = Environment()
        rec = FlightRecorder(env, registry, cadence=0.5).start()
        rec.stop()
        report = render_report(registry, rec, title="stencil")
        assert "flight recorder report: stencil" in report
        assert "labels: app=stencil, strategy=multi-io" in report
        assert "-- counters --" in report
        assert "-- gauges" in report
        assert "-- histograms" in report
        # base labels stripped from rows; instrument-own labels kept
        assert "repro_moves_total{dst=ddr4,src=mcdram}" in report
        assert 'strategy=multi-io}' not in report

    def test_report_without_recorder(self, registry):
        report = render_report(registry)
        assert "snapshots:" not in report
        assert "repro_moves_total" in report
