"""Tests for the NVM+DRAM extension (paper conclusion)."""

import pytest

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.config import DRAM_DEVICE, NVM_DEVICE, nvm_dram_config
from repro.core.api import OOCRuntimeBuilder
from repro.mem.block import BlockState
from repro.units import GiB, MiB


class TestNvmConfig:
    def test_nvm_slower_in_both_dimensions(self):
        assert NVM_DEVICE.read_bandwidth < DRAM_DEVICE.read_bandwidth
        assert NVM_DEVICE.write_bandwidth < DRAM_DEVICE.write_bandwidth
        assert NVM_DEVICE.latency > DRAM_DEVICE.latency

    def test_nvm_write_asymmetry(self):
        """Optane-class: writes are much slower than reads."""
        assert NVM_DEVICE.write_bandwidth < NVM_DEVICE.read_bandwidth / 2

    def test_tier_roles(self):
        cfg = nvm_dram_config()
        assert cfg.device("dram").numa_node == 1   # fast tier = node 1
        assert cfg.device("nvm").numa_node == 0


class TestNvmRuns:
    def run(self, strategy):
        machine = nvm_dram_config(cores=16, dram_capacity=256 * MiB,
                                  nvm_capacity=2 * GiB)
        built = OOCRuntimeBuilder(strategy, trace=False,
                                  machine_config=machine).build()
        cfg = StencilConfig(total_bytes=512 * MiB, block_bytes=8 * MiB,
                            iterations=2)
        return built, Stencil3D(built, cfg).run()

    def test_strategies_run_unchanged_on_nvm(self):
        """Zero new scheduling code for a different memory pair."""
        for strategy in ("naive", "single-io", "no-io", "multi-io"):
            built, result = self.run(strategy)
            assert result.tasks_completed == 64 * 2

    def test_prefetch_tasks_execute_from_dram(self):
        built, _ = self.run("multi-io")
        # at completion, residual blocks are wherever the run left them;
        # the invariant checks happened during execution (shared machinery)
        built.machine.registry.check_invariants()
        assert built.strategy.fetches > 0

    def test_eviction_pays_nvm_write_penalty(self):
        """HBM->slow eviction is write-bound: slower than fetch."""
        built, _ = self.run("multi-io")
        mover = built.machine.mover
        assert mover.bytes_moved > 0
        nvm = built.machine.ddr
        # evictions wrote to NVM; fetches read from it: write traffic is
        # the pricier direction
        assert nvm.bytes_written > 0

    def test_prefetch_beats_naive_by_more_than_on_knl(self):
        def speedup(machine_config):
            out = {}
            for strategy in ("naive", "multi-io"):
                if machine_config is None:
                    built = OOCRuntimeBuilder(
                        strategy, cores=32, mcdram_capacity=256 * MiB,
                        ddr_capacity=2 * GiB, trace=False).build()
                else:
                    built = OOCRuntimeBuilder(
                        strategy, trace=False,
                        machine_config=machine_config).build()
                cfg = StencilConfig(total_bytes=512 * MiB,
                                    block_bytes=4 * MiB, iterations=2)
                out[strategy] = Stencil3D(built, cfg).run().total_time
            return out["naive"] / out["multi-io"]

        nvm = nvm_dram_config(cores=32, dram_capacity=256 * MiB,
                              nvm_capacity=2 * GiB)
        assert speedup(nvm) > speedup(None)
