"""SpanTracer: span collection, lanes, and the causal edge kinds."""

import pytest

from repro.apps.spmv import SpMV, SpMVConfig
from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.core.api import OOCRuntimeBuilder
from repro.obs import SpanTracer
from repro.obs import hooks as obs_hooks
from repro.race import hooks as race_hooks
from repro.trace.events import TraceCategory
from repro.units import GiB, MiB


def traced_run(strategy="multi-io", **cfg):
    built = OOCRuntimeBuilder(strategy, cores=8,
                              mcdram_capacity=128 * MiB,
                              ddr_capacity=2 * GiB).build()
    tracer = SpanTracer(built.env).install()
    try:
        config = StencilConfig(total_bytes=cfg.get("total", 256 * MiB),
                               block_bytes=cfg.get("block", 16 * MiB),
                               iterations=cfg.get("iterations", 2))
        Stencil3D(built, config).run()
    finally:
        tracer.uninstall()
    return tracer


@pytest.fixture(scope="module")
def multi_io():
    return traced_run("multi-io")


class TestCollection:
    def test_records_execute_fetch_evict_spans(self, multi_io):
        cats = {span.category for span in multi_io.spans}
        assert TraceCategory.EXECUTE in cats
        assert TraceCategory.IO_FETCH in cats
        assert TraceCategory.IO_EVICT in cats

    def test_lanes_split_workers_from_io_threads(self, multi_io):
        lanes = multi_io.lanes()
        assert any(lane.startswith("pe") for lane in lanes)
        assert any(lane.startswith("io") for lane in lanes)

    def test_sids_unique_and_indexed(self, multi_io):
        sids = [span.sid for span in multi_io.spans]
        assert len(sids) == len(set(sids))
        assert all(multi_io.by_sid[sid].sid == sid for sid in sids)

    def test_spans_are_closed_intervals(self, multi_io):
        assert all(span.end >= span.start for span in multi_io.spans)

    def test_makespan_envelope(self, multi_io):
        start, end = multi_io.makespan()
        assert start <= end
        assert start == min(s.start for s in multi_io.spans)
        assert end == max(s.end for s in multi_io.spans)

    def test_execute_spans_carry_entry_method_labels(self, multi_io):
        labels = {s.label for s in multi_io.spans
                  if s.category is TraceCategory.EXECUTE}
        assert any(".compute_kernel" in label for label in labels)

    def test_fetch_spans_name_their_block(self, multi_io):
        fetches = [s for s in multi_io.spans
                   if s.category is TraceCategory.IO_FETCH]
        assert fetches and all(s.block for s in fetches)


class TestCausality:
    def test_execute_spans_have_send_parents(self, multi_io):
        execs = [s for s in multi_io.spans
                 if s.category is TraceCategory.EXECUTE]
        with_causes = [s for s in execs if s.causes]
        # everything after the bootstrap broadcast is caused by a send
        assert len(with_causes) > len(execs) / 2

    def test_causes_resolve_to_recorded_spans(self, multi_io):
        for span in multi_io.spans:
            for cause in span.causes:
                assert cause in multi_io.by_sid
                assert cause != span.sid

    def test_parent_is_one_of_the_causes(self, multi_io):
        for span in multi_io.spans:
            if span.parent is not None:
                assert span.parent in span.causes

    def test_fetch_to_execute_edges_exist(self, multi_io):
        fetch_sids = {s.sid for s in multi_io.spans
                      if s.category is TraceCategory.IO_FETCH}
        exec_causes = {c for s in multi_io.spans
                       if s.category is TraceCategory.EXECUTE
                       for c in s.causes}
        assert fetch_sids & exec_causes

    def test_cross_lane_edges_exist(self, multi_io):
        crossed = [
            (multi_io.by_sid[c].lane, s.lane)
            for s in multi_io.spans for c in s.causes
            if multi_io.by_sid[c].lane != s.lane
        ]
        assert crossed, "expected at least one cross-lane causal edge"

    def test_causes_precede_effects(self, multi_io):
        # a cause starts no later than its effect ends (HB edges cannot
        # point backward in simulated time)
        for span in multi_io.spans:
            for cause in span.causes:
                assert multi_io.by_sid[cause].start <= span.end


class TestSpMVCausality:
    def test_shared_vector_fetches_parent_executes(self):
        built = OOCRuntimeBuilder("multi-io", cores=8,
                                  mcdram_capacity=128 * MiB,
                                  ddr_capacity=1 * GiB).build()
        tracer = SpanTracer(built.env).install()
        try:
            SpMV(built, SpMVConfig(block_rows=16, block_bytes=8 * MiB,
                                   vector_bytes=MiB, couplings=2,
                                   iterations=1)).run()
        finally:
            tracer.uninstall()
        fetch_sids = {s.sid for s in tracer.spans
                      if s.category is TraceCategory.IO_FETCH}
        exec_causes = {c for s in tracer.spans
                       if s.category is TraceCategory.EXECUTE
                       for c in s.causes}
        assert fetch_sids & exec_causes


class TestLifecycle:
    def test_uninstall_clears_both_slots(self):
        traced_run("multi-io", iterations=1)
        assert obs_hooks.collector is None
        assert race_hooks.tracker is None

    def test_disabled_run_records_nothing(self):
        built = OOCRuntimeBuilder("multi-io", cores=4,
                                  mcdram_capacity=64 * MiB,
                                  ddr_capacity=1 * GiB).build()
        Stencil3D(built, StencilConfig(total_bytes=64 * MiB,
                                       block_bytes=16 * MiB,
                                       iterations=1)).run()
        assert obs_hooks.collector is None

    def test_no_io_strategy_uses_pe_lanes(self):
        tracer = traced_run("no-io", iterations=1)
        cats = {span.category for span in tracer.spans}
        assert TraceCategory.PREPROCESS_FETCH in cats
        fetch_lanes = {s.lane for s in tracer.spans
                       if s.category is TraceCategory.PREPROCESS_FETCH}
        assert all(lane.startswith("pe") for lane in fetch_lanes)
