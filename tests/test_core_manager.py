"""Tests for the OOC manager: interception protocol, accounting, wiring."""

import pytest

from repro.core.api import OOCRuntimeBuilder
from repro.core.manager import OOCManager
from repro.core.strategies import make_strategy
from repro.errors import RuntimeModelError, SchedulingError
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.units import GiB, MiB

HBM = 256 * MiB
DDR = 2 * GiB


class Worker(Chare):
    @entry
    def setup(self, nbytes, barrier):
        self.data = self.declare_block("data", nbytes)
        barrier.contribute()

    @entry(prefetch=True, readwrite=["data"])
    def compute(self, reducer):
        result = yield from self.kernel(flops=1e8, reads=[self.data],
                                        writes=[self.data])
        reducer.contribute(result.duration)

    @entry
    def plain(self, reducer):
        reducer.contribute()


def build(strategy="multi-io", **kwargs):
    return OOCRuntimeBuilder(strategy, cores=4, mcdram_capacity=HBM,
                             ddr_capacity=DDR, **kwargs).build()


class TestWiring:
    def test_double_interceptor_rejected(self):
        built = build()
        with pytest.raises(RuntimeModelError):
            OOCManager(built.runtime, make_strategy("no-io"))

    def test_wants_only_prefetch_entries(self):
        built = build()
        rt = built.runtime
        arr = rt.create_array(Worker, 2)
        from repro.runtime.message import Message
        chare = arr[(0,)]
        prefetch_msg = Message(chare, chare.entry_spec("compute"))
        plain_msg = Message(chare, chare.entry_spec("plain"))
        assert built.manager.wants(prefetch_msg)
        assert not built.manager.wants(plain_msg)

    def test_static_strategy_never_wants(self):
        built = build("naive")
        rt = built.runtime
        arr = rt.create_array(Worker, 1)
        from repro.runtime.message import Message
        chare = arr[(0,)]
        msg = Message(chare, chare.entry_spec("compute"))
        assert not built.manager.wants(msg)

    def test_prefetch_before_placement_rejected(self):
        built = build()
        rt = built.runtime
        arr = rt.create_array(Worker, 1)
        barrier = rt.reducer(1)
        arr.broadcast("setup", MiB, barrier)
        rt.run_until(barrier.done)
        red = rt.reducer(1)
        arr.broadcast("compute", red)  # placement NOT finalized
        with pytest.raises(SchedulingError):
            rt.run_until(red.done)

    def test_double_finalize_rejected(self):
        built = build()
        built.manager.finalize_placement()
        with pytest.raises(SchedulingError):
            built.manager.finalize_placement()


class TestAccountingAndSummary:
    def run_once(self, strategy="multi-io", chares=8, block=16 * MiB,
                 **kwargs):
        built = build(strategy, **kwargs)
        rt = built.runtime
        arr = rt.create_array(Worker, chares)
        barrier = rt.reducer(chares)
        arr.broadcast("setup", block, barrier)
        rt.run_until(barrier.done)
        built.manager.finalize_placement()
        red = rt.reducer(chares)
        arr.broadcast("compute", red)
        rt.run_until(red.done)
        return built

    def test_summary_fields(self):
        built = self.run_once()
        summary = built.manager.summary()
        assert summary["tasks_intercepted"] == 8
        assert summary["tasks_completed"] == 8
        assert summary["fetches"] >= 8
        assert summary["hbm_peak_used"] > 0

    def test_queue_lock_cost_traced(self):
        built = self.run_once(queue_lock_cost=1e-6)
        from repro.trace.events import TraceCategory
        assert built.runtime.tracer.total_time(TraceCategory.SCHEDULING) > 0

    def test_zero_queue_lock_cost_supported(self):
        built = self.run_once(queue_lock_cost=0.0)
        assert built.manager.tasks_completed == 8

    def test_hbm_headroom_respected(self):
        built = self.run_once(hbm_headroom=64 * MiB, chares=16)
        assert built.machine.hbm.allocator.peak_used <= HBM - 64 * MiB

    def test_demand_counters_drain(self):
        built = self.run_once()
        for block in built.machine.registry:
            assert block.demand == 0
            assert block.refcount == 0


class TestInflightRegistry:
    def test_begin_end_inflight(self):
        built = build()
        from repro.mem.block import DataBlock
        block = DataBlock("b", MiB)
        ev = built.manager.begin_inflight(block)
        assert not ev.triggered
        built.manager.end_inflight(block, ev)
        assert ev.triggered

    def test_double_begin_rejected(self):
        built = build()
        from repro.mem.block import DataBlock
        block = DataBlock("b", MiB)
        built.manager.begin_inflight(block)
        with pytest.raises(SchedulingError):
            built.manager.begin_inflight(block)

    def test_inflight_event_after_completion_is_fired(self):
        built = build()
        from repro.mem.block import DataBlock
        block = DataBlock("b", MiB)
        ev = built.manager.inflight_event(block)  # nothing in flight
        assert ev.triggered
