"""Deliberately broken chare declarations for the repro.lint checker tests.

This module is never imported — the checker works on source text only, so
decorator arguments that would raise at import time (``@entry(prefetch=True)``
with no deps) are fine here.  Each entry seeds exactly the rule named in its
comment; tests/test_lint_checker.py asserts the rule multiset.
"""
from repro.runtime.chare import Chare
from repro.runtime.entry import entry


class BrokenChare(Chare):
    @entry
    def setup(self, msg):
        self.a = self.declare_block("a", 1024)
        self.b = self.declare_block("a", 1024)  # REP106: duplicate name

    @entry(prefetch=True, readonly=["a"], readwrite=["a"])  # REP105
    def twice(self):
        yield from self.kernel(flops=1.0, reads=[self.a], writes=[])

    @entry(prefetch=True, readonly=["a"])
    def mismatch(self):
        # REP101: self.b undeclared; REP102: readonly 'a' is written
        yield from self.kernel(flops=1.0, reads=[self.b], writes=[self.a])

    @entry(prefetch=True, readonly=["a"], writeonly=["b"])  # REP104: dead 'b'
    def dead(self):
        yield from self.kernel(flops=1.0, reads=[self.a], writes=[])

    @entry(prefetch=True, readonly=["a"])
    def declare_inside(self):
        self.c = self.declare_block("c", 64)  # REP107
        yield from self.kernel(flops=1.0, reads=[self.a], writes=[])

    @entry
    def unmanaged(self):
        yield from self.kernel(flops=1.0, reads=[self.a], writes=[])  # REP108


class NoDeps(Chare):
    @entry(prefetch=True)  # REP103: prefetch without dependences
    def nothing(self):
        yield
