"""A deliberately racy strategy — seeded-defect fixture for repro.race.

Every defect here is a known bad pattern the subsystem must catch:

* ``force_resident``            — REP200 (raw ``.state`` assignment)
* ``undead_move``               — REP201 + REP203 (settle-to-MOVING, and a
                                  ``return`` path that abandons a move)
* ``prefetch_ignoring_result``  — REP205 (discarded fetch outcome)
* ``_rogue_main``               — REP202 + REP204 statically (unguarded
                                  raw mover eviction outside the in-flight
                                  protocol), and **dynamically** the data
                                  race racesan must flag: the rogue evicts
                                  blocks without checking ``in_use``, so
                                  its DDR move is unordered with kernel
                                  accesses by running tasks → RACE301.

The dynamic bug is schedule-dependent in *when* it bites, but the
happens-before violation exists on every schedule the rogue fires in, so
the explorer can minimize any failing seeded run to a stable
``(seed, limit)`` replay token.
"""

from __future__ import annotations

import typing as _t

from repro.core.strategies.single_io import IO_LANE, SingleIOThreadStrategy
from repro.mem.block import BlockState, DataBlock


class RacyIOStrategy(SingleIOThreadStrategy):
    """single-io plus a rogue evictor that ignores refcounts."""

    name = "racy-io"

    #: sim-seconds between rogue eviction attempts (a 16 MiB fetch takes
    #: ~1.3 ms, so this lands between fetch and task completion)
    rogue_period = 2e-3
    #: how many times the rogue fires before giving up (bounded so the
    #: simulation still quiesces)
    rogue_rounds = 30

    def setup(self) -> None:
        super().setup()
        mgr = self._mgr()
        self.rogue_evictions = 0
        self.rogue_process = mgr.env.process(self._rogue_main(),
                                             name="rogue-evictor")

    def stop(self) -> None:
        super().stop()
        proc = getattr(self, "rogue_process", None)
        if proc is not None and proc.is_alive:
            proc.interrupt("shutdown")

    # -- seeded static defects (never called at runtime) -----------------------

    def force_resident(self, block: DataBlock) -> None:
        block.state = BlockState.INHBM  # REP200: bypasses the state machine

    def undead_move(self, block: DataBlock) -> None:
        mgr = self._mgr()
        block.begin_move()
        if block.pinned:
            return  # REP203: abandons the move, block stuck MOVING
        block.settle(mgr.hbm, BlockState.MOVING)  # REP201

    def prefetch_ignoring_result(self, task: _t.Any) -> _t.Generator:
        yield from self.fetch_task_blocks(task, IO_LANE)  # REP205
        self.make_ready(self._require_pes()[0], task)

    # -- the live bug ----------------------------------------------------------

    def _rogue_main(self) -> _t.Generator:
        """Evict "idle-looking" blocks on a timer, without the refcount
        check ``evict_block`` performs — the use-after-evict race."""
        mgr = self._mgr()
        for _ in range(self.rogue_rounds):
            yield mgr.env.timeout(self.rogue_period)
            victim = next(
                (b for b in mgr.registry if b.in_hbm and not b.moving), None)
            if victim is None:
                continue
            # REP202 (no in_use/pinned guard) + REP204 (no begin_inflight)
            yield from mgr.mover.move(victim, mgr.ddr)
            self.rogue_evictions += 1
