"""Unit tests for eviction policies."""

import pytest

from repro.core.eviction import LRUEviction, NoEviction, OwnBlocksEviction
from repro.core.hbm import HBMTracker
from repro.core.ooc_task import OOCTask
from repro.machine.knl import build_knl
from repro.mem.block import AccessIntent, DataBlock
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.runtime.message import Message
from repro.sim.environment import Environment
from repro.units import GiB, MiB


class _C(Chare):
    @entry(prefetch=True, readwrite=["a"])
    def work(self):
        pass


@pytest.fixture
def node():
    return build_knl(Environment(), cores=2, mcdram_capacity=GiB,
                     ddr_capacity=4 * GiB)


def resident(node, name, nbytes=MiB, last_used=None):
    block = DataBlock(name, nbytes)
    node.registry.register(block)
    node.topology.place_block(block, node.hbm)
    if last_used is not None:
        block.retain(last_used)
        block.release()
    return block


def task_over(blocks):
    msg = Message(_C(), _C._entry_specs["work"])
    return OOCTask(msg, 0, [(b, AccessIntent.READWRITE) for b in blocks], 0.0)


class TestOwnBlocks:
    def test_evicts_own_idle_blocks_under_pressure(self, node):
        policy = OwnBlocksEviction(pressure_threshold=0.0)
        a, b = resident(node, "a"), resident(node, "b")
        task = task_over([a, b])
        victims = policy.post_task_victims(task)
        assert set(victims) == {a, b}

    def test_keeps_in_use_blocks(self, node):
        policy = OwnBlocksEviction(pressure_threshold=0.0)
        a, b = resident(node, "a"), resident(node, "b")
        b.retain()  # another task is running with b
        victims = policy.post_task_victims(task_over([a, b]))
        assert victims == [a]

    def test_keeps_demanded_blocks(self, node):
        """Blocks a queued task will need are not eagerly evicted."""
        policy = OwnBlocksEviction(pressure_threshold=0.0)
        a, b = resident(node, "a"), resident(node, "b")
        b.add_demand(99)
        victims = policy.post_task_victims(task_over([a, b]))
        assert victims == [a]

    def test_pressure_threshold_gates_eagerness(self, node):
        policy = OwnBlocksEviction(pressure_threshold=0.9)
        tracker = HBMTracker(node.hbm)
        a = resident(node, "a")
        # utilisation ~0: no eager eviction
        assert policy.post_task_victims(task_over([a]), tracker) == []
        node.hbm.allocate(950 * MiB)  # push utilisation above 90%
        assert policy.post_task_victims(task_over([a]), tracker) == [a]

    def test_make_space_falls_back_to_lru(self, node):
        policy = OwnBlocksEviction()
        old = resident(node, "old", 10 * MiB, last_used=1.0)
        new = resident(node, "new", 10 * MiB, last_used=9.0)
        victims = policy.make_space_victims(node.registry, 5 * MiB)
        assert victims == [old]

    def test_pinned_never_victim(self, node):
        policy = OwnBlocksEviction(pressure_threshold=0.0)
        a = resident(node, "a")
        a.pinned = True
        assert policy.post_task_victims(task_over([a])) == []
        assert policy.make_space_victims(node.registry, MiB) == []


class TestLRU:
    def test_no_post_task_eviction(self, node):
        policy = LRUEviction()
        a = resident(node, "a")
        assert policy.post_task_victims(task_over([a])) == []

    def test_lru_order_among_idle(self, node):
        policy = LRUEviction()
        mid = resident(node, "mid", 4 * MiB, last_used=5.0)
        old = resident(node, "old", 4 * MiB, last_used=1.0)
        new = resident(node, "new", 4 * MiB, last_used=9.0)
        victims = policy.make_space_victims(node.registry, 6 * MiB)
        assert victims == [old, mid]

    def test_never_used_counts_as_oldest(self, node):
        policy = LRUEviction()
        never = resident(node, "never", 4 * MiB)
        used = resident(node, "used", 4 * MiB, last_used=3.0)
        victims = policy.make_space_victims(node.registry, MiB)
        assert victims == [never]

    def test_demanded_blocks_evicted_last_by_belady(self, node):
        policy = LRUEviction()
        soon = resident(node, "soon", 4 * MiB)
        soon.add_demand(10)          # next use: task #10
        far = resident(node, "far", 4 * MiB)
        far.add_demand(500)          # next use: task #500
        idle = resident(node, "idle", 4 * MiB)
        victims = policy.make_space_victims(node.registry, 6 * MiB)
        assert victims == [idle, far]  # idle first, then farthest next use

    def test_include_demanded_false_excludes(self, node):
        policy = LRUEviction()
        hot = resident(node, "hot", 4 * MiB)
        hot.add_demand(1)
        victims = policy.make_space_victims(node.registry, MiB,
                                            include_demanded=False)
        assert victims == []


class TestNoEviction:
    def test_never_evicts(self, node):
        policy = NoEviction()
        a = resident(node, "a")
        assert policy.post_task_victims(task_over([a])) == []
        assert policy.make_space_victims(node.registry, GiB) == []
