"""Unit tests for Message metadata and PE accounting."""

import pytest

from repro.machine.knl import build_knl
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.runtime.message import Message
from repro.runtime.pe import PE
from repro.runtime.runtime import CharmRuntime
from repro.sim.environment import Environment
from repro.units import GiB


class Thing(Chare):
    @entry
    def poke(self):
        pass


def make_pe():
    env = Environment()
    node = build_knl(env, cores=1, mcdram_capacity=GiB, ddr_capacity=2 * GiB)
    return env, PE(env, 0, node.cores[0])


class TestMessage:
    def test_queue_delay_none_until_delivered(self):
        chare = Thing()
        msg = Message(chare, Thing._entry_specs["poke"], created_at=1.0)
        assert msg.queue_delay is None
        msg.delivered_at = 3.5
        assert msg.queue_delay == 2.5

    def test_unique_ids(self):
        chare = Thing()
        spec = Thing._entry_specs["poke"]
        assert Message(chare, spec).mid != Message(chare, spec).mid

    def test_repr_includes_target_and_entry(self):
        chare = Thing()
        text = repr(Message(chare, Thing._entry_specs["poke"]))
        assert "poke" in text


class TestPE:
    def test_wait_queue_fifo_and_requeue(self):
        _, pe = make_pe()
        pe.wait_enqueue("a")
        pe.wait_enqueue("b")
        assert pe.wait_dequeue() == "a"
        pe.wait_requeue_front("a")
        assert pe.wait_dequeue() == "a"
        assert pe.wait_depth == 1

    def test_empty_dequeue_returns_none(self):
        _, pe = make_pe()
        assert pe.wait_dequeue() is None

    def test_idle_time_accounting(self):
        env, pe = make_pe()
        pe.started_at = 0.0
        env.run(until=10.0)
        pe.note_busy(4.0)
        pe.note_overhead(1.0)
        pe.stopped_at = 10.0
        assert pe.wall_time == 10.0
        assert pe.idle_time == 5.0

    def test_wall_time_zero_before_start(self):
        _, pe = make_pe()
        assert pe.wall_time == 0.0


class TestRuntimeStats:
    def test_busy_and_overhead_totals(self):
        env = Environment()
        node = build_knl(env, cores=2, mcdram_capacity=GiB,
                         ddr_capacity=2 * GiB)
        rt = CharmRuntime(node)
        assert rt.total_busy_time() == 0.0
        rt.pes[0].note_busy(1.5)
        rt.pes[1].note_overhead(0.5)
        assert rt.total_busy_time() == 1.5
        assert rt.total_overhead_time() == 0.5
