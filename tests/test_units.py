"""Unit tests + property tests for unit parsing/formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    GB, GiB, KiB, MB, MiB, MS, US,
    format_bandwidth, format_size, format_time,
    parse_bandwidth, parse_size, parse_time,
)


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("16GiB", 16 * GiB),
        ("2 GB", 2 * GB),
        ("512MiB", 512 * MiB),
        ("4096", 4096),
        ("1.5KiB", 1536),
        ("0.5 GiB", GiB // 2),
        (1024, 1024),
        (2.0, 2),
    ])
    def test_examples(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "GiB", "12XB", "--3GB"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_case_insensitive(self):
        assert parse_size("1gib") == parse_size("1GiB")


class TestParseTime:
    @pytest.mark.parametrize("text,expected", [
        ("20ms", 0.020),
        ("1.5 s", 1.5),
        ("250us", 250e-6),
        ("2min", 120.0),
        (0.25, 0.25),
    ])
    def test_examples(self, text, expected):
        assert parse_time(text) == pytest.approx(expected)


class TestParseBandwidth:
    @pytest.mark.parametrize("text,expected", [
        ("490 GB/s", 490e9),
        ("90GB/s", 90e9),
        ("12 MiB/s", 12 * MiB),
        (5e9, 5e9),
    ])
    def test_examples(self, text, expected):
        assert parse_bandwidth(text) == pytest.approx(expected)


class TestFormatting:
    def test_format_size(self):
        assert format_size(16 * GiB) == "16.00GiB"
        assert format_size(512) == "512.00B"

    def test_format_time(self):
        assert format_time(0.020) == "20.000ms"
        assert format_time(0) == "0s"
        assert format_time(90) == "1.500min"

    def test_format_bandwidth(self):
        assert format_bandwidth(485e9) == "485.0GB/s"


class TestRoundTrips:
    @given(st.integers(min_value=0, max_value=2 ** 50))
    def test_size_identity_on_ints(self, n):
        assert parse_size(n) == n

    @given(st.integers(min_value=1, max_value=2 ** 40))
    def test_parse_format_parse_size(self, n):
        # formatting is lossy (2 decimals) but must stay within 1%
        again = parse_size(format_size(n))
        assert abs(again - n) <= max(0.01 * n, 1)

    @given(st.floats(min_value=1e-9, max_value=1e4,
                     allow_nan=False, allow_infinity=False))
    def test_parse_format_parse_time(self, t):
        again = parse_time(format_time(t, digits=6))
        assert again == pytest.approx(t, rel=1e-3)
