"""Tests for the multi-node cluster extension."""

import pytest

from repro.apps.stencil3d import StencilConfig
from repro.cluster import Cluster, ClusterStencil, FabricConfig
from repro.errors import ConfigError
from repro.units import GiB, MiB

NODE_KW = dict(strategy="multi-io", cores=8, mcdram_capacity=256 * MiB,
               ddr_capacity=2 * GiB, trace=False)


class TestClusterConstruction:
    def test_nodes_share_one_environment(self):
        cluster = Cluster(3, **NODE_KW)
        envs = {built.env for built in cluster.nodes}
        assert envs == {cluster.env}
        assert len(cluster) == 3

    def test_each_node_has_own_stack(self):
        cluster = Cluster(2, **NODE_KW)
        a, b = cluster.nodes
        assert a.machine is not b.machine
        assert a.manager is not b.manager
        assert a.strategy is not b.strategy

    def test_fabric_links_per_node(self):
        cluster = Cluster(2, **NODE_KW)
        names = {link.name for link in cluster.fabric.links}
        assert names == {"n0.out", "n0.in", "n1.out", "n1.in"}

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigError):
            Cluster(0, **NODE_KW)

    def test_invalid_fabric_rejected(self):
        with pytest.raises(ConfigError):
            FabricConfig(link_bandwidth=0)


class TestRemoteSend:
    def test_local_send_is_immediate(self):
        cluster = Cluster(2, **NODE_KW)
        delivered = []
        cluster.send_remote(0, 0, 1000, lambda: delivered.append(True))
        assert delivered == [True]
        assert cluster.remote_messages == 0

    def test_remote_send_charges_latency_and_bandwidth(self):
        cluster = Cluster(2, **NODE_KW)
        fabric = cluster.fabric_config
        delivered = []
        nbytes = 125_000_000  # 10 ms at 12.5 GB/s
        cluster.send_remote(0, 1, nbytes,
                            lambda: delivered.append(cluster.env.now))
        cluster.env.run()
        expected = nbytes / fabric.link_bandwidth + fabric.latency
        assert delivered[0] == pytest.approx(expected, rel=1e-6)
        assert cluster.remote_bytes == nbytes

    def test_concurrent_sends_contend_on_egress(self):
        cluster = Cluster(3, **NODE_KW)
        done_times = {}
        nbytes = 125_000_000
        for dst in (1, 2):
            cluster.send_remote(0, dst, nbytes,
                                lambda d=dst: done_times.setdefault(
                                    d, cluster.env.now))
        cluster.env.run()
        # both flows share n0.out -> each takes ~2x the lone-flow time
        lone = nbytes / cluster.fabric_config.link_bandwidth
        assert done_times[1] == pytest.approx(2 * lone, rel=0.01)


class TestClusterStencil:
    def test_runs_and_counts_halos(self):
        cluster = Cluster(2, **NODE_KW)
        cfg = StencilConfig(total_bytes=512 * MiB, block_bytes=32 * MiB,
                            iterations=2)
        result = ClusterStencil(cluster, cfg).run()
        # 1 internal boundary x 2 directions x 2 iterations
        assert result.remote_messages == 4
        assert result.total_time > 0
        assert len(result.iteration_times) == 2

    def test_all_nodes_complete_their_slabs(self):
        cluster = Cluster(2, **NODE_KW)
        cfg = StencilConfig(total_bytes=512 * MiB, block_bytes=32 * MiB,
                            iterations=2)
        app = ClusterStencil(cluster, cfg)
        app.run()
        for local in app.apps:
            assert sum(c._tasks_done for c in local.array) == \
                cfg.n_chares * cfg.iterations

    def test_single_node_cluster_has_no_remote_traffic(self):
        cluster = Cluster(1, **NODE_KW)
        cfg = StencilConfig(total_bytes=256 * MiB, block_bytes=32 * MiB,
                            iterations=1)
        result = ClusterStencil(cluster, cfg).run()
        assert result.remote_messages == 0

    def test_weak_scaling_iteration_time_stable(self):
        """Per-node work constant: iteration time grows only mildly with
        node count (halo cost), the weak-scaling property."""
        def mean_iter(n):
            cluster = Cluster(n, **NODE_KW)
            cfg = StencilConfig(total_bytes=256 * MiB,
                                block_bytes=16 * MiB, iterations=2)
            return ClusterStencil(cluster, cfg).run().mean_iteration_time

        one, four = mean_iter(1), mean_iter(4)
        assert four < one * 1.5
