"""Meta-tests: the public API is documented and coherent."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    "repro", "repro.analysis", "repro.cli", "repro.cluster", "repro.config",
    "repro.errors", "repro.units",
    "repro.sim", "repro.sim.events", "repro.sim.environment",
    "repro.sim.process", "repro.sim.sync", "repro.sim.resources",
    "repro.sim.fluid", "repro.sim.rand", "repro.sim.kernel",
    "repro.mem", "repro.mem.block", "repro.mem.device", "repro.mem.allocator",
    "repro.mem.topology", "repro.mem.mover", "repro.mem.registry",
    "repro.mem.cache",
    "repro.machine", "repro.machine.cpu", "repro.machine.node",
    "repro.machine.knl", "repro.machine.stream",
    "repro.runtime", "repro.runtime.message", "repro.runtime.entry",
    "repro.runtime.chare", "repro.runtime.pe", "repro.runtime.converse",
    "repro.runtime.interception", "repro.runtime.reduction",
    "repro.runtime.loadbalance", "repro.runtime.runtime",
    "repro.core", "repro.core.api", "repro.core.ooc_task", "repro.core.hbm",
    "repro.core.eviction", "repro.core.manager",
    "repro.core.strategies", "repro.core.strategies.base",
    "repro.apps", "repro.apps.stencil3d", "repro.apps.matmul",
    "repro.apps.stream_app", "repro.apps.jacobi2d", "repro.apps.spmv",
    "repro.lint", "repro.lint.findings", "repro.lint.rules",
    "repro.lint.hooks", "repro.lint.static_checker", "repro.lint.sanitizer",
    "repro.lint.cfg", "repro.lint.dataflow", "repro.lint.traffic",
    "repro.lint.guidance", "repro.lint.callgraph", "repro.lint.phases",
    "repro.lint.sarif", "repro.lint.cache",
    "repro.hooks",
    "repro.race", "repro.race.hooks", "repro.race.clock",
    "repro.race.detector", "repro.race.model_checker", "repro.race.explorer",
    "repro.metrics", "repro.metrics.hooks", "repro.metrics.instruments",
    "repro.metrics.registry", "repro.metrics.recorder",
    "repro.metrics.export", "repro.metrics.bind", "repro.metrics.session",
    "repro.exec", "repro.exec.spec", "repro.exec.fingerprint",
    "repro.exec.cache", "repro.exec.runners", "repro.exec.engine",
    "repro.exec.context", "repro.exec.explore",
    "repro.obs", "repro.obs.hooks", "repro.obs.spans", "repro.obs.critpath",
    "repro.obs.stats", "repro.obs.report", "repro.obs.trend",
    "repro.obs.html",
    "repro.trace", "repro.bench",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, \
        f"{module_name} lacks a meaningful module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    public = getattr(module, "__all__", None)
    if public is None:
        return
    undocumented = []
    for name in public:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, \
        f"{module_name}: undocumented public items {undocumented}"


def test_all_subpackage_modules_are_listed():
    """Every module under repro/ appears in the doc checklist above."""
    found = {"repro"}
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        found.add(info.name)
    missing = {m for m in found
               if m not in MODULES
               and not m.endswith("__main__")
               # strategy implementations are documented via the registry
               and not m.startswith("repro.core.strategies.")
               and not m.startswith("repro.trace.")
               and not m.startswith("repro.bench.")}
    assert not missing, f"modules missing from the doc checklist: {missing}"


def test_version_is_consistent():
    import tomllib
    from pathlib import Path

    pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
    with open(pyproject, "rb") as fh:
        meta = tomllib.load(fh)
    assert meta["project"]["version"] == repro.__version__
