"""Trend history: BENCH collection, idempotent append, dashboard HTML."""

import json

from repro.obs.trend import (DEFAULT_TREND_METRICS, append_history,
                             collect_bench_files, load_history,
                             render_trend_html)


def write_bench_file(directory, name, metrics, created="2026-01-01T00:00:00"):
    payload = {"bench": name, "schema": 1, "created": created,
               "python": "3.11", "metrics": metrics}
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


class TestCollect:
    def test_collects_by_bench_name(self, tmp_path):
        write_bench_file(tmp_path, "simcore",
                         {"event_churn": {"ops_per_s": 1e5}})
        write_bench_file(tmp_path, "obs",
                         {"stencil_1gib_multi_io": {"disabled_x": 1.0}})
        benches = collect_bench_files(tmp_path)
        assert set(benches) == {"simcore", "obs"}

    def test_ignores_corrupt_files(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        write_bench_file(tmp_path, "ok", {"s": {"m": 1.0}})
        assert set(collect_bench_files(tmp_path)) == {"ok"}

    def test_repo_has_bench_files_to_collect(self):
        # the committed snapshots feed the CI trend job
        assert "obs" in collect_bench_files()


class TestAppend:
    def test_appends_one_record(self, tmp_path):
        write_bench_file(tmp_path, "simcore", {"s": {"m": 2.0}})
        history = tmp_path / "bench_history.jsonl"
        record = append_history("abc123", directory=tmp_path, path=history)
        assert record is not None
        assert record["commit"] == "abc123"
        assert record["created"] == "2026-01-01T00:00:00"
        assert len(load_history(history)) == 1

    def test_idempotent_per_commit(self, tmp_path):
        write_bench_file(tmp_path, "simcore", {"s": {"m": 2.0}})
        history = tmp_path / "bench_history.jsonl"
        assert append_history("abc", directory=tmp_path,
                              path=history) is not None
        assert append_history("abc", directory=tmp_path,
                              path=history) is None
        assert len(load_history(history)) == 1

    def test_no_bench_files_appends_nothing(self, tmp_path):
        history = tmp_path / "bench_history.jsonl"
        assert append_history("abc", directory=tmp_path,
                              path=history) is None
        assert not history.exists()

    def test_created_is_max_of_bench_files_not_wall_clock(self, tmp_path):
        write_bench_file(tmp_path, "a", {"s": {"m": 1.0}},
                         created="2026-01-01T00:00:00")
        write_bench_file(tmp_path, "b", {"s": {"m": 1.0}},
                         created="2026-03-02T00:00:00")
        record = append_history("c1", directory=tmp_path,
                                path=tmp_path / "h.jsonl")
        assert record["created"] == "2026-03-02T00:00:00"


class TestLoad:
    def test_skips_junk_lines(self, tmp_path):
        history = tmp_path / "h.jsonl"
        good = {"commit": "a", "benches": {}}
        history.write_text(json.dumps(good) + "\n{broken\n\n")
        assert load_history(history) == [good]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []


class TestRender:
    def history(self, tmp_path, commits=("c1", "c2", "c3")):
        history = tmp_path / "h.jsonl"
        for i, commit in enumerate(commits):
            write_bench_file(tmp_path, "simcore",
                             {"event_churn": {"ops_per_s": 1e5 * (i + 1)}})
            append_history(commit, directory=tmp_path, path=history)
        return load_history(history)

    def test_sparklines_rendered(self, tmp_path):
        html = render_trend_html(self.history(tmp_path))
        assert "<svg" in html and "polyline" in html
        assert "sim-core event churn" in html

    def test_deterministic_bytes(self, tmp_path):
        records = self.history(tmp_path)
        assert render_trend_html(records) == render_trend_html(records)

    def test_empty_history_renders_placeholder(self):
        html = render_trend_html([])
        assert "No bench history yet" in html

    def test_missing_metrics_are_skipped(self, tmp_path):
        html = render_trend_html(self.history(tmp_path))
        # only simcore bench written: no bwlint row in the output
        assert "bwlint" not in html

    def test_default_metric_paths_are_three_level(self):
        for dotted, _label in DEFAULT_TREND_METRICS:
            assert dotted.count(".") == 2
