"""Tests for hybrid memory mode and cache-mode node construction."""

import pytest

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.config import MemoryMode
from repro.core.api import OOCRuntimeBuilder
from repro.errors import ConfigError
from repro.machine.knl import build_knl
from repro.sim.environment import Environment
from repro.units import GiB, MiB


class TestHybridMode:
    def test_runtime_runs_on_hybrid_flat_partition(self):
        """Hybrid mode: the OOC runtime manages the flat MCDRAM slice."""
        built = OOCRuntimeBuilder(
            "multi-io", cores=8, memory_mode=MemoryMode.HYBRID,
            mcdram_capacity=512 * MiB, ddr_capacity=4 * GiB,
            trace=False).build()
        # half of the 512 MiB is cache, half is the flat node-1 pool
        assert built.machine.hbm.capacity == 256 * MiB
        assert built.machine.mcdram_cache.capacity == 256 * MiB
        cfg = StencilConfig(total_bytes=512 * MiB, block_bytes=16 * MiB,
                            iterations=1)
        result = Stencil3D(built, cfg).run()
        assert result.tasks_completed == 32

    def test_full_cache_fraction_rejected(self):
        with pytest.raises(ConfigError):
            build_knl(Environment(), memory_mode=MemoryMode.HYBRID,
                      hybrid_cache_fraction=1.0)

    def test_zero_cache_fraction_keeps_all_flat(self):
        node = build_knl(Environment(), memory_mode=MemoryMode.HYBRID,
                         hybrid_cache_fraction=0.0,
                         mcdram_capacity=GiB)
        assert node.hbm.capacity == GiB


class TestCacheModeNode:
    def test_no_hbm_device_in_cache_mode(self):
        node = build_knl(Environment(), memory_mode=MemoryMode.CACHE)
        with pytest.raises(ConfigError):
            node.topology.node(1)

    def test_cache_parameters_derive_from_devices(self):
        node = build_knl(Environment(), memory_mode=MemoryMode.CACHE)
        cache = node.mcdram_cache
        assert cache.hit_bandwidth == pytest.approx(460e9)
        assert cache.miss_bandwidth == pytest.approx(90e9)
