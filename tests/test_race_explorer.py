"""Schedule explorer: seeded permutation, determinism, minimization."""

import pytest

from repro.errors import SimulationError
from repro.race.explorer import (SeededTieBreaker, explore,
                                 minimize_schedule, replay, run_schedule,
                                 stencil_runner)
from repro.sim.environment import Environment

from tests.test_race_detector import load_racy_strategy

SHAPE = dict(mcdram=64 << 20, total=128 << 20, block=16 << 20, iterations=1)


class TestSeededTieBreaker:
    def test_same_seed_same_keys(self):
        a = [SeededTieBreaker(7)(i) for i in range(50)]
        b = [SeededTieBreaker(7)(i) for i in range(50)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [SeededTieBreaker(7)(i) for i in range(50)]
        b = [SeededTieBreaker(8)(i) for i in range(50)]
        assert a != b

    def test_keys_are_unique_and_jittered(self):
        keys = [SeededTieBreaker(3)(i) for i in range(100)]
        assert len(set(keys)) == 100
        assert all(jitter >= 1 for jitter, _ in keys)

    def test_limit_falls_back_to_fifo(self):
        breaker = SeededTieBreaker(3, limit=2)
        keys = [breaker(i) for i in range(5)]
        assert all(jitter >= 1 for jitter, _ in keys[:2])
        assert keys[2:] == [(0, 2), (0, 3), (0, 4)]

    def test_rng_stream_is_limit_independent(self):
        # the jitter draw happens before the limit check, so the first
        # `limit` decisions are identical across limits — the property
        # replay tokens depend on
        full = [SeededTieBreaker(9)(i) for i in range(10)]
        cut = [SeededTieBreaker(9, limit=4)(i) for i in range(10)]
        assert cut[:4] == full[:4]


class TestTieBreakerHook:
    def test_requires_empty_queue(self):
        env = Environment()
        env.schedule(env.timeout(1.0))  # seed the queue with an int key
        with pytest.raises(SimulationError):
            env.set_tie_breaker(SeededTieBreaker(0))

    def test_permutes_same_instant_events(self):
        order = []

        def noter(env, tag):
            def gen():
                order.append(tag)
                return
                yield
            return gen()

        def run(seed):
            env = Environment()
            if seed is not None:
                env.set_tie_breaker(SeededTieBreaker(seed))
            for tag in range(8):
                env.process(noter(env, tag))
            env.run()
            return tuple(order), order.clear()

        fifo = run(None)[0]
        assert fifo == tuple(range(8))
        shuffles = {run(seed)[0] for seed in range(6)}
        assert any(s != fifo for s in shuffles)


class TestScheduleRuns:
    def test_clean_run_and_determinism(self):
        runner = stencil_runner(strategy="multi-io", **SHAPE)
        a = run_schedule(runner, 11)
        b = run_schedule(runner, 11)
        assert not a.failed
        assert a.signature() == b.signature()
        assert a.decisions == b.decisions
        assert a.tasks_completed and a.tasks_completed > 0

    def test_outcome_render_shapes(self):
        runner = stencil_runner(strategy="multi-io", **SHAPE)
        ok = run_schedule(runner, 1)
        assert "ok (" in ok.render() and "seed=1" in ok.render()

    def test_deadlock_detected_and_tagged_race303(self):
        from repro.sim.events import Event

        def deadlock_runner(env, rng):
            never = Event(env, name="never")

            def tick():
                yield env.timeout(1e-3)
            env.process(tick(), name="ticker")
            env.run(until=never)

        outcome = run_schedule(deadlock_runner, 0)
        assert outcome.error == "deadlock"
        assert outcome.failed
        assert any(v.rule == "RACE303" for v in outcome.san_violations)

    def test_crash_is_an_outcome_not_an_exception(self):
        def crashing_runner(env, rng):
            raise ValueError("boom")

        outcome = run_schedule(crashing_runner, 0)
        assert outcome.error == "ValueError"
        assert outcome.failed


class TestExplorationOfSeededBug:
    @pytest.fixture(scope="class")
    def racy_runner(self):
        return stencil_runner(strategy=load_racy_strategy(), **SHAPE)

    def test_explorer_finds_minimizes_and_replays(self, racy_runner):
        report = explore(racy_runner, schedules=2, base_seed=0)
        assert report.failing, report.render()
        token = report.minimized
        assert token is not None and token.failed
        assert "minimized replay token" in report.render()
        # the (seed, limit) token replays the same failure, byte for byte
        again = replay(racy_runner, token)
        assert again.failed
        assert again.signature() == token.signature()

    def test_minimized_limit_is_minimal_under_probe(self, racy_runner):
        failing = run_schedule(racy_runner, 0)
        assert failing.failed
        token = minimize_schedule(racy_runner, failing)
        assert token.limit is not None
        assert token.limit <= failing.decisions

    def test_exploration_of_clean_strategy_reports_ok(self):
        runner = stencil_runner(strategy="multi-io", **SHAPE)
        report = explore(runner, schedules=2, base_seed=0)
        assert report.ok and report.minimized is None
        assert "0 failing" in report.render()
