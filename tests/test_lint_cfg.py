"""Golden-shape tests for the repro.lint.cfg control-flow builder."""

import ast
import textwrap

from repro.lint.cfg import build_cfg


def cfg_of(body: str):
    tree = ast.parse(textwrap.dedent(body))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def render(body: str) -> str:
    return cfg_of(body).render()


class TestStraightLine:
    def test_single_block_body(self):
        assert render("""
            def f():
                a = 1
                b = a + 1
                return b
        """) == ("bb0 [entry]: L3 Assign, L4 Assign, L5 Return -> bb1\n"
                 "bb1 [exit]: (empty) -> -")

    def test_implicit_fallthrough_reaches_exit(self):
        cfg = cfg_of("""
            def f():
                a = 1
        """)
        assert cfg.blocks[0].succs == [cfg.exit]


class TestIf:
    def test_if_else_diamond(self):
        assert render("""
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
        """) == ("bb0 [entry]: L3 If -> bb3 bb4\n"
                 "bb1 [exit]: (empty) -> -\n"
                 "bb2: L7 Return -> bb1\n"
                 "bb3: L4 Assign -> bb2\n"
                 "bb4: L6 Assign -> bb2")

    def test_if_without_else_falls_through(self):
        assert render("""
            def f(x):
                if x:
                    a = 1
                return x
        """) == ("bb0 [entry]: L3 If -> bb3 bb2\n"
                 "bb1 [exit]: (empty) -> -\n"
                 "bb2: L5 Return -> bb1\n"
                 "bb3: L4 Assign -> bb2")


class TestLoops:
    def test_while_has_back_edge_and_escape(self):
        assert render("""
            def f(x):
                while x:
                    x = x - 1
                return x
        """) == ("bb0 [entry]: (empty) -> bb2\n"
                 "bb1 [exit]: (empty) -> -\n"
                 "bb2: L3 While -> bb4 bb3\n"
                 "bb3: L5 Return -> bb1\n"
                 "bb4: L4 Assign -> bb2")

    def test_for_break_jumps_to_after(self):
        cfg = cfg_of("""
            def f(xs):
                for x in xs:
                    if x:
                        break
                    y = x
                return y
        """)
        text = cfg.render()
        # the break block's only successor is the loop-after block, which
        # carries the return statement
        break_block = next(b for b in cfg.blocks
                           if any(isinstance(s, ast.Break) for s in b.stmts))
        after = next(b for b in cfg.blocks
                     if any(isinstance(s, ast.Return) for s in b.stmts))
        assert break_block.succs == [after.index], text

    def test_continue_jumps_to_header(self):
        cfg = cfg_of("""
            def f(xs):
                for x in xs:
                    if x:
                        continue
                    y = x
        """)
        head = next(b for b in cfg.blocks
                    if any(isinstance(s, ast.For) for s in b.stmts))
        cont = next(b for b in cfg.blocks
                    if any(isinstance(s, ast.Continue) for s in b.stmts))
        assert cont.succs == [head.index]

    def test_loop_else_interposed_on_exit_edge(self):
        cfg = cfg_of("""
            def f(xs):
                for x in xs:
                    y = x
                else:
                    y = 0
                return y
        """)
        head = next(b for b in cfg.blocks
                    if any(isinstance(s, ast.For) for s in b.stmts))
        orelse = next(b for b in cfg.blocks
                      if any(s.lineno == 6 for s in b.stmts))
        assert orelse.index in head.succs
        ret = next(b for b in cfg.blocks
                   if any(isinstance(s, ast.Return) for s in b.stmts))
        assert ret.index in orelse.succs
        assert ret.index not in head.succs  # no direct escape any more


class TestTry:
    def test_handler_reachable_from_entry_and_body_end(self):
        cfg = cfg_of("""
            def f():
                try:
                    a = 1
                    b = 2
                except ValueError:
                    c = 3
                return 0
        """)
        entry_block = next(b for b in cfg.blocks
                           if any(isinstance(s, ast.Try) for s in b.stmts))
        handler = next(b for b in cfg.blocks
                       if any(s.lineno == 7 for s in b.stmts))
        body = next(b for b in cfg.blocks
                    if any(s.lineno == 4 for s in b.stmts))
        assert entry_block.index in handler.preds
        assert body.index in handler.preds

    def test_finally_joins_both_paths(self):
        cfg = cfg_of("""
            def f():
                try:
                    a = 1
                except KeyError:
                    b = 2
                finally:
                    c = 3
        """)
        fin = next(b for b in cfg.blocks
                   if any(s.lineno == 8 for s in b.stmts))
        assert len(fin.preds) == 2  # body end + handler end


class TestWith:
    def test_with_body_shares_the_header_block(self):
        # a with-body executes unconditionally: header and body are one
        # straight-line block, not a branch
        assert render("""
            def f(path):
                with open(path) as fh:
                    data = fh.read()
                return data
        """) == ("bb0 [entry]: L3 With, L4 Assign, L5 Return -> bb1\n"
                 "bb1 [exit]: (empty) -> -")

    def test_loop_inside_with_still_builds_edges(self):
        cfg = cfg_of("""
            def f(xs):
                with open(xs) as fh:
                    for x in fh:
                        y = x
                return 0
        """)
        head = next(b for b in cfg.blocks
                    if any(isinstance(s, ast.For) for s in b.stmts))
        assert head.index in cfg.blocks[head.index].succs \
            or any(head.index in cfg.blocks[s].succs for s in head.succs)


class TestMatch:
    def test_match_cases_branch_and_join(self):
        assert render("""
            def f(cmd):
                match cmd:
                    case "go":
                        a = 1
                    case ("stop", x):
                        a = x
                    case _:
                        a = 0
                return a
        """) == ("bb0 [entry]: L3 Match -> bb3 bb4 bb5\n"
                 "bb1 [exit]: (empty) -> -\n"
                 "bb2: L10 Return -> bb1\n"
                 "bb3: L5 Assign -> bb2\n"
                 "bb4: L7 Assign -> bb2\n"
                 "bb5: L9 Assign -> bb2")

    def test_match_without_wildcard_keeps_fallthrough(self):
        # no irrefutable case: the subject may match nothing, so the
        # header keeps a direct edge to the join
        assert render("""
            def f(cmd):
                match cmd:
                    case "go":
                        a = 1
                return cmd
        """) == ("bb0 [entry]: L3 Match -> bb3 bb2\n"
                 "bb1 [exit]: (empty) -> -\n"
                 "bb2: L6 Return -> bb1\n"
                 "bb3: L5 Assign -> bb2")

    def test_guarded_wildcard_is_refutable(self):
        cfg = cfg_of("""
            def f(cmd):
                match cmd:
                    case _ if cmd:
                        a = 1
                return cmd
        """)
        head = next(b for b in cfg.blocks
                    if any(isinstance(s, ast.Match) for s in b.stmts))
        assert len(head.succs) == 2  # case block + fall-through

    def test_match_defs_and_uses_are_shallow(self):
        from repro.lint.dataflow import stmt_defs, stmt_uses
        tree = ast.parse(textwrap.dedent("""
            match cmd:
                case ("stop", x) if flag:
                    a = x
                case {**rest}:
                    a = 0
        """))
        stmt = tree.body[0]
        assert sorted(stmt_defs(stmt)) == ["rest", "x"]
        uses = stmt_uses(stmt)
        assert "cmd" in uses and "flag" in uses
        assert "a" not in uses  # case bodies live in their own blocks

    def test_loop_nests_descends_into_match_cases(self):
        from repro.lint.dataflow import loop_nests
        tree = ast.parse(textwrap.dedent("""
            def f(cmd):
                match cmd:
                    case "sweep":
                        for i in range(8):
                            pass
        """))
        loops = loop_nests(tree.body[0])
        assert len(loops) == 1
        assert loops[0].trip is not None and loops[0].trip.value == 8.0


class TestWhileElse:
    def test_while_else_interposed_on_escape_edge(self):
        assert render("""
            def f(x):
                while x:
                    x = x - 1
                else:
                    x = -1
                return x
        """) == ("bb0 [entry]: (empty) -> bb2\n"
                 "bb1 [exit]: (empty) -> -\n"
                 "bb2: L3 While -> bb4 bb5\n"
                 "bb3: L7 Return -> bb1\n"
                 "bb4: L4 Assign -> bb2\n"
                 "bb5: L6 Assign -> bb3")

    def test_break_skips_the_else_chain(self):
        cfg = cfg_of("""
            def f(x):
                while x:
                    break
                else:
                    x = -1
                return x
        """)
        brk = next(b for b in cfg.blocks
                   if any(isinstance(s, ast.Break) for s in b.stmts))
        ret = next(b for b in cfg.blocks
                   if any(isinstance(s, ast.Return) for s in b.stmts))
        orelse = next(b for b in cfg.blocks
                      if any(s.lineno == 6 for s in b.stmts))
        assert brk.succs == [ret.index]
        assert orelse.index not in brk.succs


class TestDeadCode:
    def test_statements_after_return_are_islanded(self):
        cfg = cfg_of("""
            def f():
                return 1
                x = 2
        """)
        island = next(b for b in cfg.blocks
                      if any(s.lineno == 4 for s in b.stmts))
        assert island.preds == []  # unreachable, but present and rendered

    def test_render_is_deterministic(self):
        body = """
            def f(x):
                for i in range(x):
                    if i:
                        continue
                return x
        """
        assert render(body) == render(body)
