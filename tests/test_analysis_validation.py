"""Cross-validation: the simulator against the closed-form models.

For steady-state, uniform workloads the DES must agree with
:mod:`repro.analysis` to within a few percent — this is the strongest
evidence the event-driven machinery (fluid solver, queues, movers) has no
systematic timing bugs.
"""

import pytest

from repro import analysis
from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.config import knl_config
from repro.core.api import OOCRuntimeBuilder
from repro.machine.knl import build_knl
from repro.mem.block import DataBlock
from repro.sim.environment import Environment
from repro.units import GiB, MiB


class TestBandwidthShare:
    def test_port_bound(self):
        assert analysis.bandwidth_share(80e9, 64) == pytest.approx(1.25e9)

    def test_cap_bound(self):
        assert analysis.bandwidth_share(80e9, 2, per_stream_cap=12e9) == 12e9

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            analysis.bandwidth_share(1.0, 0)


class TestKernelAgainstSim:
    @pytest.mark.parametrize("flops,mb", [(1e9, 64), (35e9, 16), (0.0, 128)])
    def test_single_kernel_matches_model(self, flops, mb):
        node = build_knl(Environment(), cores=4, mcdram_capacity=GiB,
                         ddr_capacity=4 * GiB)
        nbytes = mb * MiB
        block = DataBlock("b", nbytes)
        node.registry.register(block)
        node.topology.place_block(block, node.hbm)

        def body():
            result = yield from node.run_kernel_on_blocks(
                0, flops, reads=[block], writes=[block])
            return result

        sim = node.env.run(until=node.env.process(body())).duration
        cfg = node.config
        predicted = analysis.kernel_time(
            flops, 2 * nbytes,
            core_flops=cfg.core_flops,
            effective_bandwidth=min(cfg.core_mem_bandwidth,
                                    node.hbm.write_bandwidth))
        assert sim == pytest.approx(predicted, rel=0.01)

    def test_contended_kernels_match_model(self):
        """64 concurrent DDR4 kernels run at the fair-share prediction."""
        node = build_knl(Environment(), cores=64)
        nbytes = 16 * MiB
        blocks = []
        for i in range(64):
            b = DataBlock(f"b{i}", nbytes)
            node.registry.register(b)
            node.topology.place_block(b, node.ddr)
            blocks.append(b)

        def body(i):
            result = yield from node.run_kernel_on_blocks(
                i, 0.0, reads=[blocks[i]], writes=[blocks[i]])
            return result

        env = node.env
        procs = [env.process(body(i)) for i in range(64)]
        env.run(until=env.all_of(procs))
        share = analysis.bandwidth_share(node.ddr.write_bandwidth, 64,
                                         node.config.core_mem_bandwidth)
        predicted = 2 * nbytes / share
        for proc in procs:
            assert proc.value.duration == pytest.approx(predicted, rel=0.01)


class TestMoveAgainstSim:
    def test_single_move_matches_model(self):
        node = build_knl(Environment(), mcdram_capacity=GiB,
                         ddr_capacity=4 * GiB)
        block = DataBlock("m", 128 * MiB)
        node.registry.register(block)
        node.topology.place_block(block, node.ddr)
        proc = node.env.process(node.mover.move(block, node.hbm))
        result = node.env.run(until=proc)
        predicted = analysis.move_time(
            128 * MiB,
            src_read_share=node.ddr.read_bandwidth,
            dst_write_share=node.hbm.write_bandwidth,
            copy_cap=node.mover.per_thread_copy_bw,
            alloc_cost=node.hbm.allocator.alloc_cost(128 * MiB),
            free_cost=node.ddr.allocator.free_cost(128 * MiB),
            latency=node.ddr.latency + node.hbm.latency)
        assert result.total_time == pytest.approx(predicted, rel=0.01)


class TestStencilAgainstSim:
    def test_static_placement_iteration_matches_model(self):
        """DDR-only Stencil3D iteration time ≈ the analytic blend."""
        built = OOCRuntimeBuilder("ddr-only", cores=64,
                                  mcdram_capacity=GiB,
                                  ddr_capacity=6 * GiB, trace=False).build()
        cfg = StencilConfig(total_bytes=2 * GiB, block_bytes=8 * MiB,
                            iterations=3)
        app = Stencil3D(built, cfg)
        result = app.run()
        model = analysis.AnalyticStencil(
            built.machine.config, cfg.block_bytes, cfg.n_chares,
            cfg.flops_per_task, cfg.sweep_traffic_factor)
        predicted = model.iteration_time(hbm_fraction=0.0)
        # communication + scheduling overheads put the sim a little above
        assert result.mean_iteration_time == pytest.approx(predicted,
                                                           rel=0.15)
        assert result.mean_iteration_time >= predicted * 0.95

    def test_prefetch_run_respects_analytic_floor(self):
        """Measured multi-IO iterations cannot beat the closed-form floor,
        and land within ~25%% of it (overlap quality)."""
        built = OOCRuntimeBuilder("multi-io", cores=64,
                                  mcdram_capacity=GiB,
                                  ddr_capacity=6 * GiB, trace=False).build()
        cfg = StencilConfig(total_bytes=2 * GiB, block_bytes=4 * MiB,
                            iterations=3)
        result = Stencil3D(built, cfg).run()
        model = analysis.AnalyticStencil(
            built.machine.config, cfg.block_bytes, cfg.n_chares,
            cfg.flops_per_task, cfg.sweep_traffic_factor)
        floor = model.prefetch_iteration_floor()
        assert result.mean_iteration_time >= floor * 0.98
        assert result.mean_iteration_time <= floor * 1.3

    def test_measured_speedup_tracks_analytic_bound(self):
        """Measured Fig-8 speedup lands near the closed-form bound; it may
        exceed it only by Naive's unmodelled overheads (~25%%)."""
        hbm, ddr = GiB, 6 * GiB
        results = {}
        for strategy in ("naive", "multi-io"):
            built = OOCRuntimeBuilder(strategy, cores=64,
                                      mcdram_capacity=hbm,
                                      ddr_capacity=ddr, trace=False).build()
            cfg = StencilConfig(total_bytes=2 * GiB, block_bytes=4 * MiB,
                                iterations=3)
            results[strategy] = Stencil3D(built, cfg).run().total_time
        measured = results["naive"] / results["multi-io"]
        bound = analysis.stencil_speedup_bound(
            knl_config(mcdram_capacity=hbm, ddr_capacity=ddr),
            hbm_capacity_fraction=0.5)
        assert 1.0 < measured <= bound * 1.25

    def test_speedup_bound_magnitude(self):
        """The paper's 'upto 2X' sits inside the analytic bound."""
        bound = analysis.stencil_speedup_bound()
        assert 2.0 < bound < 3.0
