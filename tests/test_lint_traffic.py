"""bwlint tests: REP300-REP306 seeded defects, inference, crash contract."""

import ast
import textwrap

import pytest

from repro.lint.traffic import AnalyzerCrash, analyze_tree, check_tree
from repro.units import MiB


def traffic_rules(body: str) -> list[str]:
    tree = ast.parse(textwrap.dedent(body))
    return sorted(f.rule for f in check_tree(tree, "t.py")
                  if f.rule.startswith("REP3"))


def sites_of(body: str):
    tree = ast.parse(textwrap.dedent(body))
    return analyze_tree(tree, "t.py").sites


# A well-formed chare: setup binds the site, the prefetch kernel reads
# and writes it.  Every rule fixture below is a one-line perturbation.
CLEAN = """
    from repro.runtime.chare import Chare
    from repro.runtime.entry import entry

    class C(Chare):
        @entry
        def setup(self, barrier):
            self.a = self.declare_block("a", 1024)
            barrier.contribute()

        @entry(prefetch=True, readwrite=["a"])
        def go(self, red):
            result = yield from self.kernel(
                flops=1.0, reads=[self.a], writes=[self.a])
            red.contribute(result.duration)
"""


class TestRuleFixtures:
    def test_clean_chare_has_no_findings(self):
        assert traffic_rules(CLEAN) == []

    def test_rep300_overdeclared_readwrite(self):
        # declared readwrite, but the kernel only ever reads it
        assert traffic_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1024)
                    self.out = self.declare_block("out", 1024)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"], writeonly=["out"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[self.out])
                    red.contribute(result.duration)
        """) == ["REP300"]

    def test_rep301_dead_allocation(self):
        # self.dead is declared and then never loaded anywhere
        assert traffic_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1024)
                    self.dead = self.declare_block("scratch", 4096)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[self.a])
                    red.contribute(result.duration)
        """) == ["REP301"]

    def test_rep302_writeonly_shared_site(self):
        # every entry referencing the shared panel declares writeonly
        assert traffic_rules("""
            from repro.runtime.chare import Chare, NodeGroup
            from repro.runtime.entry import entry

            class Panels(NodeGroup):
                @entry
                def setup(self, barrier):
                    self.share_block(("S", 0), 8192)
                    barrier.contribute()

                def panel(self, i):
                    return self.shared[("S", i)]

            class C(Chare):
                @entry
                def setup(self, panels: Panels, barrier):
                    self.s = panels.panel(0)
                    barrier.contribute()

                @entry(prefetch=True, writeonly=["s"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[], writes=[self.s])
                    red.contribute(result.duration)
        """) == ["REP302"]

    def test_rep303_unbound_dependence(self):
        # "ghost" is declared and used but self.ghost is never bound
        assert traffic_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1024)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"], readonly=["ghost"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a, self.ghost],
                        writes=[self.a])
                    red.contribute(result.duration)
        """) == ["REP303"]

    def test_rep304_footprint_exceeds_hbm(self):
        # 9 GiB + 9 GiB simultaneously live > the 16 GiB HBM tier
        assert traffic_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry
            from repro.units import GiB

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 9 * GiB)
                    self.b = self.declare_block("b", 9 * GiB)
                    barrier.contribute()

                @entry(prefetch=True, readonly=["a"], readwrite=["b"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a, self.b],
                        writes=[self.b])
                    red.contribute(result.duration)
        """) == ["REP304"]

    def test_rep305_unbounded_kernel_loop(self):
        # a while loop with no inferable trip count wraps the launch
        assert traffic_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1024)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"])
                def go(self, red):
                    while not self.converged():
                        result = yield from self.kernel(
                            flops=1.0, reads=[self.a], writes=[self.a])
                    red.contribute(result.duration)

                def converged(self):
                    return True
        """) == ["REP305"]

    def test_rep306_conflicting_alias_intents(self):
        # self.b aliases self.a; the decl gives the two handles
        # different intents for the same underlying site
        assert traffic_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1024)
                    self.b = self.a
                    barrier.contribute()

                @entry(prefetch=True, readonly=["a"], writeonly=["b"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[self.b])
                    red.contribute(result.duration)
        """) == ["REP306"]


class TestSuppressionGates:
    def test_tainted_class_suppresses_everything(self):
        # duplicate literal declare names taint the class: the site map
        # is ambiguous, so no REP3xx rule may fire
        assert traffic_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1024)
                    self.b = self.declare_block("a", 2048)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"], readonly=["ghost"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a, self.ghost],
                        writes=[self.a])
                    red.contribute(result.duration)
        """) == []

    def test_unknown_kernel_args_suppress_intent_rules(self):
        # reads=blocks(...) is opaque, so REP300/REP303 must stay silent
        assert traffic_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1024)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"], readonly=["ghost"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=self.pick(), writes=[self.a])
                    red.contribute(result.duration)

                def pick(self):
                    return [self.a]
        """) == []

    def test_unannotated_attr_assignment_suppresses_rep303(self):
        # self.shared = shared (opaque param) must not read as unbound
        assert traffic_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, shared, barrier):
                    self.a = self.declare_block("a", 1024)
                    self.s = shared
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"], readonly=["s"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a, self.s],
                        writes=[self.a])
                    red.contribute(result.duration)
        """) == []


class TestInference:
    def test_literal_size_and_volumes(self):
        sites = sites_of(CLEAN)
        (site,) = sites.values()
        assert site.id == "C.a"
        assert site.size.value == 1024.0
        assert site.reads.value == 1024.0
        assert site.writes.value == 1024.0
        assert site.intents == {"readwrite"}
        assert site.order == 0

    def test_send_map_resolves_parameter_sizes(self):
        # the driver's send() call supplies the setup argument, so the
        # site size resolves through the (entry, arity) send map
        sites = sites_of("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry
            from repro.units import MiB

            class C(Chare):
                @entry
                def setup(self, nbytes, barrier):
                    self.buf = self.declare_block("buf", nbytes)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["buf"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.buf], writes=[self.buf])
                    red.contribute(result.duration)

            def drive(array, barrier):
                for idx in array.indices:
                    array.send(idx, "setup", 32 * MiB, barrier)
        """)
        assert sites["C.buf"].size.value == float(32 * MiB)

    def test_loop_trip_multiplies_traffic(self):
        sites = sites_of("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1000)
                    barrier.contribute()

                @entry(prefetch=True, readonly=["a"])
                def go(self, red):
                    for _ in range(5):
                        result = yield from self.kernel(
                            flops=1.0, reads=[self.a], writes=[])
                    red.contribute(result.duration)
        """)
        assert sites["C.a"].reads.value == 5000.0
        assert sites["C.a"].writes is None or sites["C.a"].writes.value == 0.0

    def test_traffic_scale_kwarg_multiplies_traffic(self):
        sites = sites_of("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1000)
                    barrier.contribute()

                @entry(prefetch=True, readonly=["a"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[],
                        traffic_scale=8.0)
                    red.contribute(result.duration)
        """)
        assert sites["C.a"].reads.value == 8000.0

    def test_config_dataclass_fields_resolve_symbolically(self):
        sites = sites_of("""
            import dataclasses

            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry
            from repro.units import MiB

            @dataclasses.dataclass(frozen=True)
            class Cfg:
                block_bytes: int = 64 * MiB

            class C(Chare):
                @entry
                def setup(self, cfg: Cfg, barrier):
                    self.a = self.declare_block("a", cfg.block_bytes)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[self.a])
                    red.contribute(result.duration)
        """)
        site = sites["C.a"]
        assert site.size.value == float(64 * MiB)
        assert "Cfg.block_bytes" in site.size.expr


class TestCrashContract:
    def test_forced_crash_raises_analyzer_crash(self, monkeypatch):
        import repro.lint.traffic as traffic_mod

        monkeypatch.setattr(traffic_mod, "_FORCE_CRASH", "C")
        tree = ast.parse(textwrap.dedent(CLEAN))
        with pytest.raises(AnalyzerCrash) as err:
            check_tree(tree, "boom.py")
        assert err.value.file == "boom.py"
        assert err.value.function == "C"
        assert isinstance(err.value.cause, RuntimeError)


class TestCleanTree:
    def test_repo_sources_have_zero_rep3_findings(self):
        """REP300-306 must report nothing on the repo's own code."""
        from pathlib import Path

        from repro.lint.static_checker import check_paths

        root = Path(__file__).resolve().parents[1]
        report = check_paths([root / "src" / "repro", root / "examples"])
        rep3 = [f for f in report.findings if f.rule.startswith("REP3")]
        assert rep3 == [], [f.render() for f in rep3]
