"""racesan unit tests (hand-driven clocks) + whole-app integration."""

import importlib.util
import os
import types

from repro.race.clock import format_clock, fresh, happened_before, join
from repro.race.detector import RaceSanitizer

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "racy_strategy.py")


def load_racy_strategy():
    spec = importlib.util.spec_from_file_location("racy_strategy", FIXTURE)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod.RacyIOStrategy


def _block(bid):
    return types.SimpleNamespace(bid=bid, name=f"blk{bid}")


def _dev(name):
    return types.SimpleNamespace(name=name)


#: fake processes must outlive the detector's id()-keyed actor table
_PROCS: dict = {}
_EVENT = object()


def _switch(rs, name):
    """Resume a fake process so `name` becomes the ambient actor."""
    proc = _PROCS.setdefault((id(rs), name),
                             types.SimpleNamespace(name=name, env=None))
    rs.on_resume(proc, _EVENT)


class TestClocks:
    def test_fresh_and_join(self):
        a = fresh("a")
        assert a == {"a": 1}
        join(a, {"b": 3, "a": 0})
        assert a == {"a": 1, "b": 3}

    def test_happened_before(self):
        assert happened_before("a", 2, {"a": 2})
        assert happened_before("a", 2, {"a": 5, "b": 1})
        assert not happened_before("a", 2, {"a": 1})
        assert not happened_before("a", 1, {"b": 9})

    def test_format_clock_truncates(self):
        text = format_clock({f"p{i}": i for i in range(10)}, limit=2)
        assert "+8 more" in text


class TestDetectorUnits:
    def test_unordered_writes_flagged_with_clock_evidence(self):
        rs = RaceSanitizer(stacks=False)
        b = _block(1)
        _switch(rs, "A")
        rs.on_kernel_access([], [b])
        _switch(rs, "B")
        rs.on_kernel_access([], [b])
        assert [f.rule for f in rs.findings] == ["RACE301"]
        f = rs.findings[0]
        assert f.first.actor == "A" and f.second.actor == "B"
        assert f.first.own >= 1 and isinstance(f.first.clock, dict)
        assert "no happens-before" in f.render()
        assert "@" in f.render()  # vector-clock evidence is printed

    def test_handoff_edge_orders_the_accesses(self):
        rs = RaceSanitizer(stacks=False)
        b, item = _block(1), object()
        _switch(rs, "A")
        rs.on_kernel_access([], [b])
        rs.on_handoff_put(item)
        _switch(rs, "B")
        rs.on_handoff_get(item)
        rs.on_kernel_access([], [b])
        assert rs.findings == []

    def test_settle_edge_orders_mover_then_reader(self):
        rs = RaceSanitizer(stacks=False)
        b = _block(1)
        _switch(rs, "mover")
        rs.on_move_start(b, _dev("ddr4"), _dev("mcdram"))
        rs.on_move_end(b, _dev("ddr4"), _dev("mcdram"))
        _switch(rs, "pe0")
        rs.on_kernel_access([b], [])  # acquires the settle clock
        assert rs.findings == []

    def test_reader_vs_concurrent_move_is_a_race(self):
        rs = RaceSanitizer(stacks=False)
        b = _block(1)
        _switch(rs, "pe0")
        rs.on_kernel_access([b], [])
        _switch(rs, "rogue")
        rs.on_move_start(b, _dev("mcdram"), _dev("ddr4"))
        assert [f.rule for f in rs.findings] == ["RACE301"]
        ops = (rs.findings[0].first.op, rs.findings[0].second.op)
        assert ops == ("kernel-read", "move-start mcdram->ddr4")

    def test_release_edge_legalises_the_eviction(self):
        rs = RaceSanitizer(stacks=False)
        b = _block(1)
        _switch(rs, "pe0")
        rs.on_retain(b)
        rs.on_kernel_access([b], [])
        rs.on_release(b)
        _switch(rs, "io")
        rs.on_move_start(b, _dev("mcdram"), _dev("ddr4"))
        assert rs.findings == []

    def test_retain_is_atomic_and_never_conflicts(self):
        rs = RaceSanitizer(stacks=False)
        b = _block(1)
        _switch(rs, "io-a")
        rs.on_move_start(b, _dev("ddr4"), _dev("mcdram"))
        _switch(rs, "io-b")
        rs.on_retain(b)  # concurrent refcount bump on a shared block: legal
        assert rs.findings == []
        assert rs.accesses_observed >= 2

    def test_writeonly_read_reports_race302(self):
        rs = RaceSanitizer(stacks=False)
        b = _block(1)
        intent = types.SimpleNamespace(reads=False, writes=True)
        task = types.SimpleNamespace(
            tid=7, deps=((b, intent),),
            message=types.SimpleNamespace(
                target=types.SimpleNamespace(label="C[0]"),
                entry=types.SimpleNamespace(name="go")))
        _switch(rs, "pe0")
        rs.on_deliver(None, None, task)
        rs.on_kernel_access([b], [])
        assert [f.rule for f in rs.findings] == ["RACE302"]
        assert "writeonly" in rs.findings[0].render()

    def test_duplicate_pairs_reported_once(self):
        rs = RaceSanitizer(stacks=False)
        b = _block(1)
        for _ in range(3):
            _switch(rs, "A")
            rs.on_kernel_access([], [b])
            _switch(rs, "B")
            rs.on_kernel_access([], [b])
        # one finding per directed (actor, op) pair: A→B and B→A, not six
        assert len(rs.findings) == 2

    def test_max_findings_cap_counts_suppressed(self):
        rs = RaceSanitizer(stacks=False, max_findings=1)
        for bid in range(3):
            b = _block(bid)
            _switch(rs, "A")
            rs.on_kernel_access([], [b])
            _switch(rs, "B")
            rs.on_kernel_access([], [b])
        assert len(rs.findings) == 1
        assert rs.suppressed == 2
        assert "suppressed" in rs.render_report()


class TestDetectorIntegration:
    def test_shipped_strategies_run_clean(self):
        from repro.race.explorer import (matmul_runner, run_schedule,
                                         stencil_runner)
        cases = [
            ("stencil", stencil_runner(strategy="multi-io", mcdram=64 << 20,
                                       total=128 << 20, block=16 << 20,
                                       iterations=1), (None, 0, 1)),
            ("stencil", stencil_runner(strategy="single-io", mcdram=64 << 20,
                                       total=128 << 20, block=16 << 20,
                                       iterations=1), (None, 0)),
            ("stencil", stencil_runner(strategy="no-io", mcdram=64 << 20,
                                       total=128 << 20, block=16 << 20,
                                       iterations=1), (None, 0)),
            ("matmul", matmul_runner(strategy="multi-io", mcdram=64 << 20,
                                     working_set=64 << 20, block_dim=64),
             (None,)),
        ]
        for app, runner, seeds in cases:
            for seed in seeds:
                outcome = run_schedule(runner, seed)
                assert not outcome.failed, \
                    f"{app} seed={seed}: {outcome.render()}"

    def test_racy_fixture_reports_race301_with_evidence(self):
        from repro.race.explorer import run_schedule, stencil_runner
        runner = stencil_runner(strategy=load_racy_strategy(),
                                mcdram=64 << 20, total=128 << 20,
                                block=16 << 20, iterations=1)
        outcome = run_schedule(runner, None)
        races = [f for f in outcome.race_findings if f.rule == "RACE301"]
        assert races, outcome.render()
        f = races[0]
        assert "rogue-evictor" in (f.first.actor, f.second.actor) or \
            "rogue-evictor" in f.message
        # both access records carry stacks and vector clocks
        assert f.first.stack and f.second.stack
        assert f.first.clock and f.second.clock
        assert "clock" in f.render() and "stack" in f.render()
