"""Occupancy behaviour differentiates the static baselines from prefetch.

Static strategies never move data, so the occupancy log stays empty; the
prefetch strategies keep HBM near its budget while cycling an
out-of-core working set (the paper's 'track the HBM memory in use').
"""

import pytest

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.core.api import OOCRuntimeBuilder
from repro.trace.occupancy import occupancy_stats
from repro.units import GiB, MiB


def run(strategy):
    built = OOCRuntimeBuilder(strategy, cores=8, mcdram_capacity=128 * MiB,
                              ddr_capacity=1 * GiB, trace=True).build()
    cfg = StencilConfig(total_bytes=256 * MiB, block_bytes=8 * MiB,
                        iterations=2)
    Stencil3D(built, cfg).run()
    return built


class TestOccupancyByStrategy:
    def test_static_strategies_log_nothing(self):
        for strategy in ("naive", "ddr-only"):
            built = run(strategy)
            assert built.manager.occupancy_log == []

    @pytest.mark.parametrize("strategy", ["single-io", "no-io", "multi-io"])
    def test_prefetch_strategies_keep_hbm_busy(self, strategy):
        built = run(strategy)
        stats = occupancy_stats(built.manager.occupancy_log,
                                built.machine.hbm.capacity)
        assert stats["samples"] > 10
        assert stats["peak"] > 0.7
        assert 0.0 < stats["mean"] <= 1.0

    def test_occupancy_never_exceeds_capacity(self):
        built = run("multi-io")
        cap = built.machine.hbm.capacity
        assert all(used <= cap for _, used in built.manager.occupancy_log)
