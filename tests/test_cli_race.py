"""CLI tests for `repro race` and the schedule flags on stencil/matmul."""

import os

from repro.cli import main
from repro.lint import hooks as lint_hooks
from repro.race import hooks as race_hooks

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "racy_strategy.py")
SMALL = ["--cores", "8", "--mcdram", "64MiB", "--ddr", "1GiB",
         "--total", "128MiB", "--block", "16MiB", "--iterations", "1"]


class TestStaticMode:
    def test_default_targets_check_clean(self, capsys):
        assert main(["race", "--static"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_fixture_exits_nonzero_with_all_rules(self, capsys):
        assert main(["race", FIXTURE]) == 1  # targets imply --static
        out = capsys.readouterr().out
        for rule in ("REP200", "REP201", "REP202", "REP203",
                     "REP204", "REP205"):
            assert rule in out
        assert f"{FIXTURE}:" in out

    def test_missing_target_exits_two(self, capsys):
        assert main(["race", "--static", "/no/such/path.py"]) == 2
        assert "race:" in capsys.readouterr().err


class TestDynamicMode:
    def test_fifo_run_under_racesan_is_clean(self, capsys):
        assert main(["race", "--app", "stencil", *SMALL]) == 0
        assert "ok" in capsys.readouterr().out
        assert race_hooks.tracker is None  # uninstalled after the run
        assert lint_hooks.observer is None

    def test_explore_schedules_clean(self, capsys):
        assert main(["race", "--app", "stencil",
                     "--explore-schedules", "2", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "explored 2 schedule(s): 0 failing" in out


class TestAppFlags:
    def test_stencil_race_flag_clean_run(self, capsys):
        assert main(["stencil", "--race", "--strategy", "multi-io",
                     *SMALL]) == 0
        out = capsys.readouterr().out
        assert "racesan: 0 finding(s)" in out
        assert "total time" in out  # the normal run still happened
        assert race_hooks.tracker is None
        assert lint_hooks.observer is None

    def test_stencil_explore_flag_short_circuits(self, capsys):
        assert main(["stencil", "--explore-schedules", "2", "--seed", "5",
                     "--strategy", "multi-io", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "explored 2 schedule(s)" in out
        assert "total time" not in out  # exploration replaces the run

    def test_matmul_seed_replays_one_schedule(self, capsys):
        assert main(["matmul", "--seed", "3", "--strategy", "multi-io",
                     "--cores", "8", "--mcdram", "64MiB", "--ddr", "1GiB",
                     "--working-set", "64MiB", "--block-dim", "64"]) == 0
        assert "seed=3: ok" in capsys.readouterr().out
