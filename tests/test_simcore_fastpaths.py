"""The sim-core fast paths: O(1) heap-entry invalidation and slot-based
event callbacks."""

import pytest

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event


class TestHeapEntryInvalidation:
    def test_cancelled_entry_never_fires(self):
        env = Environment()
        fired = []
        ev = Event(env, name="victim")
        ev._ok, ev._value = True, None
        ev.add_callback(fired.append)
        entry = env.schedule(ev, delay=1.0)
        assert env.cancel(entry) is True
        env.run()
        assert fired == []
        assert env.now == 0.0  # the dead entry did not advance the clock

    def test_cancel_is_idempotent(self):
        env = Environment()
        ev = Event(env, name="victim")
        ev._ok, ev._value = True, None
        entry = env.schedule(ev, delay=1.0)
        assert env.cancel(entry) is True
        assert env.cancel(entry) is False
        assert env.cancel(entry) is False

    def test_cancel_processed_entry_returns_false(self):
        env = Environment()
        ev = Event(env, name="done")
        ev._ok, ev._value = True, None
        entry = env.schedule(ev)
        env.run()
        assert env.cancel(entry) is False

    def test_live_count_tracks_cancellations(self):
        env = Environment()
        entries = []
        for i in range(5):
            ev = Event(env, name=f"e{i}")
            ev._ok, ev._value = True, None
            entries.append(env.schedule(ev, delay=float(i)))
        assert env._live == 5
        env.cancel(entries[1])
        env.cancel(entries[3])
        assert env._live == 3
        env.run()
        assert env._live == 0

    def test_peek_skips_cancelled_heads(self):
        env = Environment()
        early = Event(env, name="early")
        early._ok, early._value = True, None
        late = Event(env, name="late")
        late._ok, late._value = True, None
        entry = env.schedule(early, delay=1.0)
        env.schedule(late, delay=2.0)
        env.cancel(entry)
        assert env.peek() == 2.0

    def test_step_with_only_cancelled_entries_raises(self):
        env = Environment()
        ev = Event(env, name="victim")
        ev._ok, ev._value = True, None
        entry = env.schedule(ev, delay=1.0)
        env.cancel(entry)
        with pytest.raises(SimulationError):
            env.step()

    def test_run_until_deadline_ignores_cancelled(self):
        env = Environment()
        ev = Event(env, name="victim")
        ev._ok, ev._value = True, None
        env.cancel(env.schedule(ev, delay=0.5))
        env.run(until=2.0)
        assert env.now == 2.0

    def test_interleaved_cancel_and_timeout_ordering(self):
        """Cancelling entries must not disturb surviving event order."""
        env = Environment()
        order = []

        def proc(tag, delay):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc("a", 1.0))
        env.process(proc("b", 2.0))
        doomed = Event(env, name="doomed")
        doomed._ok, doomed._value = True, None
        env.cancel(env.schedule(doomed, delay=1.5))
        env.process(proc("c", 3.0))
        env.run()
        assert order == ["a", "b", "c"]


class TestSlotCallbacks:
    def _triggered(self, env, name=""):
        ev = Event(env, name=name)
        ev._ok, ev._value = True, None
        env.schedule(ev)
        return ev

    def test_single_callback_runs(self):
        env = Environment()
        ev = self._triggered(env)
        got = []
        ev.add_callback(got.append)
        env.run()
        assert got == [ev]

    def test_many_callbacks_run_in_registration_order(self):
        env = Environment()
        ev = self._triggered(env)
        order = []
        for i in range(5):
            ev.add_callback(lambda _e, i=i: order.append(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_callback_added_after_processing_runs_immediately(self):
        env = Environment()
        ev = self._triggered(env)
        env.run()
        got = []
        ev.add_callback(got.append)
        assert got == [ev]

    def test_callbacks_view_before_and_after_processing(self):
        env = Environment()
        ev = self._triggered(env)
        a = lambda e: None  # noqa: E731
        b = lambda e: None  # noqa: E731
        assert ev.callbacks == []
        ev.add_callback(a)
        assert ev.callbacks == [a]
        ev.add_callback(b)
        assert ev.callbacks == [a, b]
        env.run()
        assert ev.callbacks is None

    def test_overflow_list_only_for_second_waiter(self):
        env = Environment()
        ev = Event(env)
        ev.add_callback(lambda e: None)
        assert ev._cbs is None  # one waiter: no list allocated
        ev.add_callback(lambda e: None)
        assert ev._cbs is not None
