"""Unit tests for stores and resources."""

import pytest

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.resources import PriorityStore, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("x")
        ev = store.get()
        assert ev.triggered and ev.value == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        ev = store.get()
        assert not ev.triggered
        store.put("y")
        assert ev.triggered and ev.value == "y"

    def test_fifo_item_order(self, env):
        store = Store(env)
        for i in range(5):
            store.put(i)
        assert [store.get().value for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_fifo_getter_order(self, env):
        store = Store(env)
        first, second = store.get(), store.get()
        store.put("a")
        store.put("b")
        assert first.value == "a" and second.value == "b"

    def test_try_get_nonblocking(self, env):
        store = Store(env)
        assert store.try_get() is None
        store.put(1)
        assert store.try_get() == 1

    def test_len_and_items(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        assert len(store) == 2
        assert store.items == ("a", "b")


class TestPriorityStore:
    def test_pops_smallest(self, env):
        store = PriorityStore(env)
        for v in (3, 1, 2):
            store.put(v)
        assert [store.get().value for _ in range(3)] == [1, 2, 3]

    def test_explicit_priority(self, env):
        store = PriorityStore(env)
        store.put("low", priority=10)
        store.put("high", priority=1)
        assert store.get().value == "high"

    def test_fifo_among_equal_priorities(self, env):
        store = PriorityStore(env)
        store.put("first", priority=1)
        store.put("second", priority=1)
        assert store.get().value == "first"

    def test_blocked_getter_served_on_put(self, env):
        store = PriorityStore(env)
        ev = store.get()
        store.put(7)
        assert ev.value == 7


class TestResource:
    def test_grants_up_to_capacity(self, env):
        res = Resource(env, capacity=2)
        assert res.request().triggered
        assert res.request().triggered
        assert not res.request().triggered
        assert res.in_use == 2
        assert res.queue_length == 1

    def test_release_hands_to_waiter(self, env):
        res = Resource(env, capacity=1)
        res.request()
        waiter = res.request()
        res.release()
        assert waiter.triggered
        assert res.in_use == 1

    def test_release_idle_raises(self, env):
        with pytest.raises(SimulationError):
            Resource(env).release()

    def test_zero_capacity_rejected(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)
