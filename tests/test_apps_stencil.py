"""Tests for the Stencil3D application."""

import pytest

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.core.api import OOCRuntimeBuilder
from repro.errors import ConfigError
from repro.units import GiB, MiB

HBM = 256 * MiB
DDR = 2 * GiB


def run_stencil(strategy, *, total=512 * MiB, block=32 * MiB, iterations=2,
                cores=8, **kwargs):
    built = OOCRuntimeBuilder(strategy, cores=cores, mcdram_capacity=HBM,
                              ddr_capacity=DDR, trace=False, **kwargs).build()
    cfg = StencilConfig(total_bytes=total, block_bytes=block,
                        iterations=iterations)
    app = Stencil3D(built, cfg)
    return built, app, app.run()


class TestStencilConfig:
    def test_chare_count(self):
        cfg = StencilConfig(total_bytes=32 * GiB, block_bytes=64 * MiB)
        assert cfg.n_chares == 512

    def test_chare_grid_factorisation(self):
        cfg = StencilConfig(total_bytes=32 * GiB, block_bytes=64 * MiB)
        gx, gy, gz = cfg.chare_grid()
        assert gx * gy * gz == 512
        assert (gx, gy, gz) == (8, 8, 8)

    def test_grid_for_prime_count(self):
        cfg = StencilConfig(total_bytes=13 * MiB, block_bytes=MiB)
        gx, gy, gz = cfg.chare_grid()
        assert gx * gy * gz == 13

    def test_paper_reduced_working_sets(self):
        """Figure 8's x-axis: 2/4/8 GB reduced WS from 32 GB total."""
        for rws_gb, block_mb in ((2, 32), (4, 64), (8, 128)):
            cfg = StencilConfig(total_bytes=32 * GiB,
                                block_bytes=block_mb * MiB)
            assert cfg.reduced_working_set(64) == rws_gb * GiB

    def test_flops_scale_with_inner_sweeps(self):
        lo = StencilConfig(inner_sweeps=1)
        hi = StencilConfig(inner_sweeps=20)
        assert hi.flops_per_task == 20 * lo.flops_per_task

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            StencilConfig(total_bytes=0)
        with pytest.raises(ConfigError):
            StencilConfig(total_bytes=MiB, block_bytes=2 * MiB)
        with pytest.raises(ConfigError):
            StencilConfig(iterations=0)
        with pytest.raises(ConfigError):
            StencilConfig(sweep_traffic_factor=0)


class TestStencilRuns:
    def test_completes_all_tasks(self):
        _, app, result = run_stencil("multi-io")
        assert result.tasks_completed == app.config.n_chares * 2
        assert len(result.iteration_times) == 2

    def test_neighbour_topology(self):
        built, app, _ = run_stencil("naive", total=128 * MiB, block=16 * MiB,
                                    iterations=1)
        # 8 chares -> 2x2x2 grid: every chare has exactly 3 neighbours
        for chare in app.array:
            assert len(chare.neighbours) == 3
        corner = app.array[(0, 0, 0)]
        assert set(corner.neighbours) == {(1, 0, 0), (0, 1, 0), (0, 0, 1)}

    def test_kernel_time_positive_and_consistent(self):
        _, _, result = run_stencil("ddr-only")
        assert result.kernel_time_total > 0
        assert result.mean_kernel_time > 0
        assert result.total_time >= result.mean_iteration_time

    def test_hbm_only_faster_than_ddr_only(self):
        """Figure 2's effect at small scale (when the set fits in HBM)."""
        _, _, fast = run_stencil("hbm-only", total=128 * MiB, block=16 * MiB,
                                 cores=8)
        _, _, slow = run_stencil("ddr-only", total=128 * MiB, block=16 * MiB,
                                 cores=8)
        assert slow.mean_kernel_time > fast.mean_kernel_time

    def test_out_of_core_multi_io_beats_ddr_only(self):
        # bandwidth sensitivity needs enough concurrency to saturate DDR4
        kwargs = dict(total=512 * MiB, block=4 * MiB, cores=32, iterations=2)
        _, _, ddr = run_stencil("ddr-only", **kwargs)
        _, _, pref = run_stencil("multi-io", **kwargs)
        assert pref.total_time < ddr.total_time

    def test_deterministic(self):
        t1 = run_stencil("multi-io")[2].total_time
        t2 = run_stencil("multi-io")[2].total_time
        assert t1 == t2

    def test_single_chare_degenerate_case(self):
        _, _, result = run_stencil("hbm-only", total=16 * MiB, block=16 * MiB,
                                   iterations=2, cores=2)
        assert result.tasks_completed == 2
