"""Flow-set-signature memo: replay correctness, invalidation, oracle check.

The memo replays cached max-min rate vectors for previously seen component
configurations.  Correctness rests on two claims these tests pin down:

* rates depend only on the component *structure* (capacities, weights,
  per-flow caps, membership order) — never on remaining bytes — so a
  repeated phase may replay, and the replayed vector is what the kernel
  would recompute bit-for-bit;
* any mutation of that structure changes the signature, so stale entries
  can never be served (content keying subsumes invalidation).

The full solver is the unmemoized oracle: every scenario here is
cross-checked against ``solver="full"`` timelines and rates.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.sim.environment import Environment
from repro.sim.fluid import _MEMO_MAX, FluidNetwork, default_memo


def _run_phases(solver: str, memo: bool, seed: int,
                phases: int = 5, repeats: int = 3):
    """Run a randomized phase alphabet ``repeats`` times; return the trace.

    The trace records, per phase instance, the solved rate vector at
    arrival and every flow's completion instant — everything the memo
    could corrupt if it replayed a wrong vector.
    """
    rng = random.Random(seed)
    env = Environment()
    net = FluidNetwork(env, solver=solver, memo=memo)
    links = [net.add_link(f"l{i}", rng.choice([50e9, 80e9, 100e9]))
             for i in range(4)]
    alphabet = []
    for _ in range(phases):
        alphabet.append([
            (rng.uniform(1e6, 5e8),
             rng.sample(range(len(links)), rng.randint(1, 2)),
             rng.choice([1.0, 2.0, 4.0]),
             rng.choice([5e9, 12e9, math.inf]))
            for _ in range(rng.randint(2, 6))])
    trace = []
    for _ in range(repeats):
        for spec in alphabet:
            started = [net.start_flow(nbytes, [links[i] for i in lidx],
                                      weight=w, max_rate=cap)
                       for nbytes, lidx, w, cap in spec]
            rates = tuple(f.rate for f in started)  # settles the solve
            env.run(env.all_of([f.done for f in started]))
            trace.append((env.now, rates,
                          tuple(f.finished_at for f in started)))
    return trace, net


@pytest.mark.parametrize("seed", range(4))
def test_memo_replay_matches_oracle_and_memo_off(seed: int) -> None:
    oracle, _ = _run_phases("full", False, seed)
    memo_off, net_off = _run_phases("incremental", False, seed)
    memo_on, net_on = _run_phases("incremental", True, seed)
    assert memo_on == memo_off == oracle
    assert net_off.memo_hits == net_off.memo_misses == 0
    # repeated phases must actually exercise the replay path
    assert net_on.memo_hits > 0
    assert net_on.solves == net_on.memo_misses < net_off.solves


@pytest.mark.parametrize("seed", range(2))
def test_memo_replay_matches_under_vectorized(seed: int) -> None:
    scalar, _ = _run_phases("incremental", True, seed)
    vec, _ = _run_phases("vectorized", True, seed)
    assert vec == scalar


def test_capacity_mutation_invalidates() -> None:
    env = Environment()
    net = FluidNetwork(env, solver="incremental", memo=True)
    link = net.add_link("port", 100e9)
    first = net.start_flow(1e9, [link])
    assert first.rate == 100e9
    env.run(first.done)
    link.capacity = 50e9  # direct topology mutation
    second = net.start_flow(1e9, [link])
    assert second.rate == 50e9  # a stale replay would say 100e9
    env.run(second.done)


def test_weight_and_cap_changes_invalidate() -> None:
    env = Environment()
    net = FluidNetwork(env, solver="incremental", memo=True)
    link = net.add_link("port", 90e9)

    def pair_rates(w, cap):
        a = net.start_flow(2e9, [link], weight=w)
        b = net.start_flow(2e9, [link], weight=1.0, max_rate=cap)
        rates = (a.rate, b.rate)
        env.run(env.all_of([a.done, b.done]))
        return rates

    assert pair_rates(1.0, math.inf) == (45e9, 45e9)
    assert pair_rates(2.0, math.inf) == (60e9, 30e9)
    capped = pair_rates(1.0, 10e9)
    assert capped[1] == 10e9 and capped[0] == 80e9
    # and the original configuration still replays correctly afterwards
    assert pair_rates(1.0, math.inf) == (45e9, 45e9)
    assert net.memo_hits >= 1


def test_membership_order_is_part_of_the_signature() -> None:
    # same flow multiset, different link.flows insertion order: the freeze
    # loop walks that order, so the signatures must be distinct entries
    env = Environment()
    net = FluidNetwork(env, solver="incremental", memo=True)
    link = net.add_link("port", 60e9)
    a = net.start_flow(1e9, [link], weight=1.0, max_rate=5e9)
    b = net.start_flow(1e9, [link], weight=2.0)
    sig_ab = net._signature([a, b], [link])
    env.run(env.all_of([a.done, b.done]))
    c = net.start_flow(1e9, [link], weight=2.0)
    d = net.start_flow(1e9, [link], weight=1.0, max_rate=5e9)
    sig_cd = net._signature([c, d], [link])
    env.run(env.all_of([c.done, d.done]))
    assert sig_ab != sig_cd


def test_memo_is_fifo_bounded() -> None:
    env = Environment()
    net = FluidNetwork(env, solver="incremental", memo=True)
    link = net.add_link("port", 100e9)
    for k in range(_MEMO_MAX + 40):
        flow = net.start_flow(1e6, [link], weight=1.0 + k * 1e-6)
        env.run(flow.done)
    assert len(net._memo) <= _MEMO_MAX


def test_full_solver_never_memoizes() -> None:
    env = Environment()
    net = FluidNetwork(env, solver="full", memo=True)
    assert not net._memo_enabled
    link = net.add_link("port", 100e9)
    for _ in range(3):
        env.run(net.start_flow(1e8, [link]).done)
    assert net.memo_hits == 0 and net.memo_misses == 0
    assert not net._memo


def test_env_gate_disables_memo(monkeypatch) -> None:
    monkeypatch.setenv("REPRO_SOLVER_MEMO", "0")
    assert not default_memo()
    env = Environment()
    net = FluidNetwork(env, solver="incremental")
    link = net.add_link("port", 100e9)
    for _ in range(3):
        env.run(net.start_flow(1e8, [link]).done)
    assert net.memo_hits == 0 and net.memo_misses == 0
    monkeypatch.delenv("REPRO_SOLVER_MEMO")
    assert default_memo()


def test_solve_wall_clock_is_recorded() -> None:
    env = Environment()
    net = FluidNetwork(env, solver="incremental")
    link = net.add_link("port", 100e9)
    env.run(net.start_flow(1e9, [link]).done)
    assert net.solve_wall_s > 0.0
