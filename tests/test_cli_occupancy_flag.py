"""CLI shows the occupancy sparkline for traced runs."""

import pytest

from repro.cli import main


def test_stencil_cli_runs_with_small_config(capsys):
    code = main(["stencil", "--strategy", "multi-io", "--cores", "8",
                 "--mcdram", "128MiB", "--ddr", "1GiB",
                 "--total", "256MiB", "--block", "8MiB",
                 "--iterations", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "hbm occupancy" in out
    assert "peak=" in out
