"""Unit tests for the machine layer: CPU layout, kernels, STREAM."""

import pytest

from repro.config import ConfigError, MachineConfig, knl_config
from repro.errors import ExperimentError
from repro.machine.cpu import build_cpu
from repro.machine.knl import build_knl
from repro.machine.stream import run_stream
from repro.mem.block import DataBlock
from repro.sim.environment import Environment
from repro.units import GiB, MiB


class TestCpuLayout:
    def test_knl_layout(self):
        cores, tiles = build_cpu(68, 34, 4, 35e9, 12e9)
        assert len(cores) == 68
        assert len(tiles) == 34
        assert all(len(t.cores) == 2 for t in tiles)
        assert len(cores[0].threads) == 4

    def test_smt_sibling_distinct_from_primary(self):
        cores, _ = build_cpu(4, 2, 4, 35e9, 12e9)
        core = cores[0]
        assert core.smt_sibling().global_id != core.primary_thread.global_id
        assert core.smt_sibling().core_id == core.core_id

    def test_sibling_without_smt_rejected(self):
        cores, _ = build_cpu(2, 1, 1, 35e9, 12e9)
        with pytest.raises(ConfigError):
            cores[0].smt_sibling()

    def test_hardware_thread_ids_unique(self):
        cores, _ = build_cpu(8, 4, 4, 35e9, 12e9)
        ids = [t.global_id for c in cores for t in c.threads]
        assert len(set(ids)) == len(ids) == 32


class TestConfig:
    def test_knl_config_defaults(self):
        cfg = knl_config()
        assert cfg.cores == 64
        assert cfg.device("mcdram").capacity == 16 * GiB
        assert cfg.hardware_threads == 256

    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigError):
            knl_config().device("nvram")

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(cores=0)
        with pytest.raises(ConfigError):
            MachineConfig(smt=0)
        with pytest.raises(ConfigError):
            MachineConfig(hybrid_cache_fraction=1.5)


class TestKernelExecution:
    @pytest.fixture
    def node(self):
        return build_knl(Environment(), cores=4, mcdram_capacity=GiB,
                         ddr_capacity=4 * GiB)

    def test_pure_compute_kernel(self, node):
        proc = node.env.process(node.run_kernel(0, flops=35e9, traffic={}))
        result = node.env.run(until=proc)
        assert result.duration == pytest.approx(1.0)
        assert not result.memory_bound

    def test_memory_bound_kernel(self, node):
        # 12 GB over one core capped at 12 GB/s -> 1 s, compute floor tiny
        proc = node.env.process(node.run_kernel(
            0, flops=1e6, traffic={node.hbm: (12e9, 0.0)}))
        result = node.env.run(until=proc)
        assert result.duration == pytest.approx(1.0, rel=1e-3)
        assert result.memory_bound

    def test_roofline_max_semantics(self, node):
        """Duration = max(compute floor, memory time), not the sum."""
        proc = node.env.process(node.run_kernel(
            0, flops=35e9, traffic={node.hbm: (6e9, 0.0)}))  # mem: 0.5s
        result = node.env.run(until=proc)
        assert result.duration == pytest.approx(1.0, rel=1e-3)

    def test_negative_flops_rejected(self, node):
        with pytest.raises(ConfigError):
            next(node.run_kernel(0, flops=-1, traffic={}))

    def test_kernel_on_blocks_uses_residency(self, node):
        fast = DataBlock("fast", 120 * MiB)
        slow = DataBlock("slow", 120 * MiB)
        node.registry.register(fast)
        node.registry.register(slow)
        node.topology.place_block(fast, node.hbm)
        node.topology.place_block(slow, node.ddr)
        env = node.env

        def run(block):
            result = yield from node.run_kernel_on_blocks(
                0, flops=0.0, reads=[block], writes=[block])
            return result

        r_fast = env.run(until=env.process(run(fast)))
        r_slow = env.run(until=env.process(run(slow)))
        # both capped by the per-core 12 GB/s here; with 4 cores no
        # contention, so only device bandwidth differences show when
        # aggregated -- so instead verify traffic accounting:
        assert node.hbm.bytes_read > 0 and node.ddr.bytes_read > 0
        assert r_fast.bytes_touched == r_slow.bytes_touched

    def test_unplaced_block_rejected(self, node):
        ghost = DataBlock("ghost", MiB)
        with pytest.raises(ConfigError):
            next(node.run_kernel_on_blocks(0, 0.0, reads=[ghost], writes=[]))

    def test_contention_between_kernels(self):
        """Enough concurrent kernels saturate the device and slow down."""
        node = build_knl(Environment(), cores=16, mcdram_capacity=GiB,
                         ddr_capacity=4 * GiB)
        env = node.env
        nbytes = 4e9

        def kernel(core):
            result = yield from node.run_kernel(
                core, flops=0.0, traffic={node.ddr: (nbytes, nbytes)})
            return result

        solo = env.run(until=env.process(kernel(0))).duration
        # 16 cores x 12 GB/s demand = 192 GB/s against an 80 GB/s port
        procs = [env.process(kernel(c)) for c in range(16)]
        env.run(until=env.all_of(procs))
        crowd = max(p.value.duration for p in procs)
        assert crowd > solo * 2.0


class TestStream:
    @pytest.fixture
    def node(self):
        return build_knl(Environment())

    def test_mcdram_beats_ddr_by_over_4x(self, node):
        """Figure 1's central observation."""
        ddr = run_stream(node, "ddr4", kernel="triad", threads=64)
        hbm = run_stream(node, "mcdram", kernel="triad", threads=64)
        assert hbm.bandwidth / ddr.bandwidth > 4.0

    def test_bandwidth_saturates_with_threads(self, node):
        one = run_stream(node, "mcdram", threads=1)
        many = run_stream(node, "mcdram", threads=64)
        assert many.bandwidth > one.bandwidth * 10
        # a single thread is capped by per-core bandwidth
        assert one.bandwidth <= node.config.core_mem_bandwidth * 1.01

    def test_all_kernels_measurable(self, node):
        for kernel in ("copy", "scale", "add", "triad"):
            result = run_stream(node, "ddr4", kernel=kernel, threads=8)
            assert result.bandwidth > 0

    def test_unknown_kernel_rejected(self, node):
        with pytest.raises(ExperimentError):
            run_stream(node, "ddr4", kernel="nonsense")

    def test_thread_count_validated(self, node):
        with pytest.raises(ExperimentError):
            run_stream(node, "ddr4", threads=1000)
