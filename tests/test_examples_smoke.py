"""Smoke tests: the fast example scripts must run end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "strategy            : multi-io" in out
        assert "tasks completed     : 192" in out

    def test_stream_bandwidth(self):
        out = run_example("stream_bandwidth.py")
        assert "ratio=4.75x" in out
        assert "hbm-only" in out

    @pytest.mark.slow
    def test_cache_mode_ablation(self):
        out = run_example("cache_mode_ablation.py", timeout=600)
        assert "flat wins by" in out
