"""Integration tests: messaging, converse delivery, reductions, LB."""

import pytest

from repro.errors import RuntimeModelError
from repro.machine.knl import build_knl
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.runtime.loadbalance import (
    GreedyLoadBalancer,
    block_cyclic_map,
    block_map,
    round_robin_map,
)
from repro.runtime.reduction import Reducer
from repro.runtime.runtime import CharmRuntime
from repro.sim.environment import Environment
from repro.units import GiB


def make_runtime(cores=4, **kwargs):
    node = build_knl(Environment(), cores=cores, mcdram_capacity=GiB,
                     ddr_capacity=4 * GiB)
    return CharmRuntime(node, **kwargs)


class Echo(Chare):
    @entry
    def setup(self):
        self.log = []

    @entry
    def ping(self, value, reducer):
        self.log.append((value, self.runtime.env.now))
        reducer.contribute(value)

    @entry
    def timed(self, reducer):
        yield self.runtime.env.timeout(0.5)
        reducer.contribute(self.runtime.env.now)


class TestMessaging:
    def test_send_delivers_after_latency(self):
        rt = make_runtime(message_latency=3e-6)
        arr = rt.create_array(Echo, 1)
        arr.broadcast("setup")
        red = rt.reducer(1)
        arr.send(0, "ping", 42, red)
        rt.run_until(red.done)
        assert arr[0].log[0][0] == 42
        # both messages sent at t=0 arrive after one latency; FIFO order
        # guarantees setup ran first
        assert arr[0].log[0][1] == pytest.approx(3e-6)

    def test_broadcast_reaches_all(self):
        rt = make_runtime()
        arr = rt.create_array(Echo, 10)
        arr.broadcast("setup")
        red = rt.reducer(10, combiner=sum)
        arr.broadcast("ping", 1, red)
        total = rt.run_until(red.done)
        assert total == 10

    def test_generator_entries_consume_time(self):
        rt = make_runtime()
        arr = rt.create_array(Echo, 2)
        arr.broadcast("setup")
        red = rt.reducer(2, combiner=max)
        arr.broadcast("timed", red)
        finish = rt.run_until(red.done)
        assert finish == pytest.approx(0.5, abs=1e-4)

    def test_same_pe_messages_serialize(self):
        """Two timed entries on one PE run back to back (one worker)."""
        rt = make_runtime(cores=1)
        arr = rt.create_array(Echo, 2)  # both chares on pe0
        arr.broadcast("setup")
        red = rt.reducer(2, combiner=max)
        arr.broadcast("timed", red)
        finish = rt.run_until(red.done)
        assert finish == pytest.approx(1.0, abs=1e-4)

    def test_foreign_chare_rejected(self):
        rt1, rt2 = make_runtime(), make_runtime()
        arr = rt1.create_array(Echo, 1)
        from repro.errors import ChareError
        with pytest.raises(ChareError):
            rt2.send(arr[0], "setup")

    def test_pe_accounting(self):
        rt = make_runtime(cores=1)
        arr = rt.create_array(Echo, 1)
        arr.broadcast("setup")
        red = rt.reducer(1)
        arr.broadcast("timed", red)
        rt.run_until(red.done)
        pe = rt.pes[0]
        assert pe.tasks_executed == 2
        assert pe.busy_time == pytest.approx(0.5, abs=1e-4)

    def test_shutdown_stops_schedulers(self):
        rt = make_runtime()
        rt.shutdown()
        for pe in rt.pes:
            assert pe.stopped_at is not None


class TestReducer:
    def test_fires_at_expected_count(self):
        env = Environment()
        red = Reducer(env, 3)
        red.contribute(1)
        red.contribute(2)
        assert not red.complete
        red.contribute(3)
        assert red.complete

    def test_combiner_applied(self):
        env = Environment()
        red = Reducer(env, 2, combiner=max)
        red.contribute(5)
        red.contribute(9)
        env.run()
        assert red.done.value == 9

    def test_no_combiner_returns_list(self):
        env = Environment()
        red = Reducer(env, 2)
        red.contribute("a")
        red.contribute("b")
        env.run()
        assert red.done.value == ["a", "b"]

    def test_over_contribution_rejected(self):
        env = Environment()
        red = Reducer(env, 1)
        red.contribute()
        with pytest.raises(RuntimeModelError):
            red.contribute()

    def test_zero_expected_rejected(self):
        with pytest.raises(RuntimeModelError):
            Reducer(Environment(), 0)


class TestLoadBalanceMaps:
    def test_round_robin_covers_all_pes(self):
        indices = [(i,) for i in range(10)]
        mapping = round_robin_map(indices, 4)
        assert set(mapping.values()) == {0, 1, 2, 3}

    def test_block_map_contiguity(self):
        indices = [(i,) for i in range(8)]
        mapping = block_map(indices, 2)
        assert [mapping[(i,)] for i in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_block_cyclic_2d_tiles(self):
        indices = [(i, j) for i in range(8) for j in range(8)]
        mapping = block_cyclic_map(indices, 4)  # 2x2 PE grid
        # chares (0,0),(0,2) share a PE; (0,0),(0,1) do not
        assert mapping[(0, 0)] == mapping[(0, 2)]
        assert mapping[(0, 0)] != mapping[(0, 1)]
        assert set(mapping.values()) == {0, 1, 2, 3}

    def test_block_cyclic_falls_back_for_non_2d(self):
        indices = [(i,) for i in range(6)]
        assert block_cyclic_map(indices, 3) == round_robin_map(indices, 3)

    def test_zero_pes_rejected(self):
        for fn in (round_robin_map, block_map, block_cyclic_map):
            with pytest.raises(RuntimeModelError):
                fn([(0,)], 0)


class TestGreedyLB:
    def test_heaviest_first_balances(self):
        lb = GreedyLoadBalancer(2)
        loads = {(0,): 10.0, (1,): 9.0, (2,): 2.0, (3,): 1.0}
        mapping = lb.rebalance(loads)
        per_pe = [0.0, 0.0]
        for idx, pe in mapping.items():
            per_pe[pe] += loads[idx]
        assert abs(per_pe[0] - per_pe[1]) <= 2.0

    def test_imbalance_metric(self):
        loads = {(0,): 4.0, (1,): 4.0}
        perfect = {(0,): 0, (1,): 1}
        terrible = {(0,): 0, (1,): 0}
        assert GreedyLoadBalancer.imbalance(loads, perfect, 2) == 1.0
        assert GreedyLoadBalancer.imbalance(loads, terrible, 2) == 2.0

    def test_improves_random_assignment(self):
        import random
        rng = random.Random(7)
        loads = {(i,): rng.uniform(0.1, 10.0) for i in range(40)}
        lb = GreedyLoadBalancer(8)
        random_map = {idx: rng.randrange(8) for idx in loads}
        greedy_map = lb.rebalance(loads)
        assert (GreedyLoadBalancer.imbalance(loads, greedy_map, 8)
                <= GreedyLoadBalancer.imbalance(loads, random_map, 8))
