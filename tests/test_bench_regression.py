"""BENCH_*.json recording: write/read round-trip and the metrics digest."""

import json

from repro.bench.regression import (bench_path, best_wall_time, read_bench,
                                    repo_root, write_bench)
from repro.metrics.registry import MetricsRegistry
from repro.metrics.export import digest

METRICS = {"scenario_a": {"wall_s": 0.5, "speedup": 2.0}}


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = write_bench("t", METRICS, directory=tmp_path)
        assert path == bench_path("t", tmp_path)
        data = read_bench("t", directory=tmp_path)
        assert data["bench"] == "t"
        assert data["schema"] == 1
        assert data["metrics"]["scenario_a"]["speedup"] == 2.0
        assert "metrics_digest" not in data

    def test_metrics_digest_rides_along(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("repro_moved_bytes_total", src="mcdram").inc(4096)
        reg.gauge("repro_moves_inflight").set(3)
        write_bench("t", METRICS, directory=tmp_path,
                    metrics_digest=digest(reg))
        data = read_bench("t", directory=tmp_path)
        assert data["metrics_digest"]["repro_moved_bytes_total"] == 4096.0
        assert data["metrics_digest"]["repro_moves_inflight_hwm"] == 3.0

    def test_read_missing_or_corrupt(self, tmp_path):
        assert read_bench("absent", directory=tmp_path) is None
        bench_path("bad", tmp_path).write_text("{not json")
        assert read_bench("bad", directory=tmp_path) is None

    def test_written_file_is_stable_json(self, tmp_path):
        path = write_bench("t", METRICS, directory=tmp_path)
        doc = json.loads(path.read_text())
        assert sorted(doc) == list(doc)  # sort_keys=True


class TestHelpers:
    def test_repo_root_finds_pyproject(self):
        assert (repo_root() / "pyproject.toml").is_file()

    def test_best_wall_time_returns_min_and_result(self):
        calls = []

        def fn():
            calls.append(1)
            return "out"

        best, result = best_wall_time(fn, repeats=3)
        assert len(calls) == 3
        assert best >= 0.0
        assert result == "out"
