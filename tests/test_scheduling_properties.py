"""Property-based tests of the out-of-core scheduler's invariants.

Hypothesis drives randomized workload shapes (chare counts, block sizes,
HBM capacities, strategies) through a complete prefetch application and
asserts the §IV-B invariants hold in every reachable state:

* every ``[prefetch]`` task executed with all dependences ``INHBM``;
* HBM allocator usage never exceeded capacity;
* reference counts and demand counters drain to zero;
* every intercepted task completed (no lost or duplicated work);
* the run is deterministic.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import OOCRuntimeBuilder
from repro.mem.block import BlockState
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.units import MiB

DDR = 4 * 1024 * MiB


class PropWorker(Chare):
    @entry
    def setup(self, nbytes, shared, barrier):
        self.own = self.declare_block("own", nbytes)
        self.shared = shared
        self.states_seen = []
        barrier.contribute()

    @entry(prefetch=True, readwrite=["own"], readonly=["shared"])
    def compute(self, reducer):
        blocks = [self.own] + list(self.shared)
        self.states_seen.append(tuple(b.state for b in blocks))
        result = yield from self.kernel(flops=5e7, reads=blocks,
                                        writes=[self.own])
        reducer.contribute(result.duration)


def run_workload(strategy, chares, block_mib, hbm_mib, rounds,
                 shared_blocks):
    built = OOCRuntimeBuilder(
        strategy, cores=4, mcdram_capacity=hbm_mib * MiB,
        ddr_capacity=DDR, trace=False).build()
    rt = built.runtime
    group = rt.create_node_group()
    shared = [group.share_block(i, block_mib * MiB)
              for i in range(shared_blocks)]
    arr = rt.create_array(PropWorker, chares)
    barrier = rt.reducer(chares)
    arr.broadcast("setup", block_mib * MiB, shared, barrier)
    rt.run_until(barrier.done)
    built.manager.finalize_placement()
    for _ in range(rounds):
        red = rt.reducer(chares)
        arr.broadcast("compute", red)
        rt.run_until(red.done)
    # let asynchronous post-processing (in-flight evictions) settle
    built.env.run()
    return built, arr


WORKLOADS = st.fixed_dictionaries({
    "strategy": st.sampled_from(["single-io", "no-io", "multi-io"]),
    "chares": st.integers(min_value=1, max_value=10),
    "block_mib": st.integers(min_value=1, max_value=12),
    "hbm_mib": st.integers(min_value=48, max_value=160),
    "rounds": st.integers(min_value=1, max_value=2),
    "shared_blocks": st.integers(min_value=0, max_value=2),
})


def _feasible(w):
    # every task must fit in the HBM budget: own + shared blocks
    per_task = (1 + w["shared_blocks"]) * w["block_mib"]
    return per_task < w["hbm_mib"]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(w=WORKLOADS.filter(_feasible))
def test_prefetch_invariants_hold(w):
    built, arr = run_workload(**w)

    # 1. every execution saw all dependences in HBM
    for chare in arr:
        assert len(chare.states_seen) == w["rounds"]
        for states in chare.states_seen:
            assert all(s is BlockState.INHBM for s in states)

    # 2. HBM capacity respected at all times
    assert built.machine.hbm.allocator.peak_used <= w["hbm_mib"] * MiB

    # 3. counters drained
    for block in built.machine.registry:
        assert block.refcount == 0
        assert block.demand == 0
        assert not block.moving

    # 4. exactly-once completion
    expected = w["chares"] * w["rounds"]
    assert built.manager.tasks_intercepted == expected
    assert built.manager.tasks_completed == expected

    # 5. registry-wide consistency
    built.machine.registry.check_invariants()


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(w=WORKLOADS.filter(_feasible))
def test_runs_are_deterministic(w):
    t1 = run_workload(**w)[0].env.now
    t2 = run_workload(**w)[0].env.now
    assert t1 == t2


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(w=WORKLOADS.filter(_feasible))
def test_conservation_of_bytes(w):
    """Everything fetched was either evicted or is still resident in HBM."""
    built, _ = run_workload(**w)
    strat = built.strategy
    resident = built.machine.registry.bytes_in_state(BlockState.INHBM)
    assert strat.bytes_fetched == strat.bytes_evicted + resident
