"""Replicate suite: spec fan-out, aggregation, HTML determinism."""

import pytest

from repro.bench.harness import ExperimentResult, FigurePlan
from repro.exec.spec import RunSpec
from repro.obs.report import (SweepFigure, assemble_sweep,
                              render_report_html, replicate_specs)


def selftest_plan(name="SelfTest", points=("a", "b"), labels=("x", "y"),
                  base=10.0):
    """A deterministic figure: value = base + point index + label index."""
    points, labels = tuple(points), tuple(labels)
    specs = [RunSpec("selftest", {"value": base + pi * 10 + li},
                     label=f"{name}/{point}/{label}")
             for pi, point in enumerate(points)
             for li, label in enumerate(labels)]

    def assemble(results):
        it = iter(results)
        series = {point: {label: float(next(it)["value"])
                          for label in labels}
                  for point in points}
        return ExperimentResult(figure=name, description=f"{name} desc",
                                series=series, unit="units")

    return FigurePlan(name, specs, assemble)


def fake_results(specs):
    """What the exec engine would return for selftest specs."""
    return [{"value": spec.params["value"], "spun": 0} for spec in specs]


class TestReplicateSpecs:
    def test_replicate_zero_keeps_identity(self):
        plan = selftest_plan()
        specs = replicate_specs([plan], 3)
        assert specs[:len(plan.specs)] == plan.specs
        assert all("replicate" not in s.params
                   for s in specs[:len(plan.specs)])

    def test_later_replicates_get_distinct_cache_keys(self):
        plan = selftest_plan()
        specs = replicate_specs([plan], 3)
        keys = {spec.key() for spec in specs}
        assert len(keys) == len(specs)

    def test_replicate_major_ordering(self):
        plans = [selftest_plan("A"), selftest_plan("B")]
        width = sum(len(p.specs) for p in plans)
        specs = replicate_specs(plans, 2)
        assert len(specs) == 2 * width
        assert all(s.params.get("replicate") == 1 for s in specs[width:])

    def test_rejects_zero_replicates(self):
        with pytest.raises(ValueError):
            replicate_specs([selftest_plan()], 0)


class TestAssembleSweep:
    def test_stats_aggregate_across_replicates(self):
        plan = selftest_plan()
        specs = replicate_specs([plan], 3)
        figures = assemble_sweep([plan], 3, fake_results(specs))
        (fig,) = figures
        assert isinstance(fig, SweepFigure)
        assert fig.stats["a"]["x"].n == 3
        # deterministic selftest: all replicates identical
        assert fig.stats["a"]["x"].mean == pytest.approx(10.0)
        assert fig.stats["a"]["x"].ci95 == 0.0

    def test_baseline_gets_tests_others_get_welch(self):
        plan = selftest_plan()
        specs = replicate_specs([plan], 2)
        (fig,) = assemble_sweep([plan], 2, fake_results(specs),
                                baseline="x")
        assert fig.baseline == "x"
        assert fig.tests["a"]["x"] is None
        # y differs from x deterministically -> significant
        assert fig.tests["a"]["y"].significant

    def test_unknown_baseline_silently_dropped(self):
        plan = selftest_plan()
        specs = replicate_specs([plan], 2)
        (fig,) = assemble_sweep([plan], 2, fake_results(specs),
                                baseline="nope")
        assert fig.baseline is None
        assert all(t is None for row in fig.tests.values()
                   for t in row.values())

    def test_result_count_mismatch_raises(self):
        plan = selftest_plan()
        with pytest.raises(ValueError):
            assemble_sweep([plan], 2, fake_results(plan.specs))

    def test_multi_plan_offsets(self):
        plans = [selftest_plan("A", base=1.0), selftest_plan("B", base=2.0)]
        specs = replicate_specs(plans, 2)
        figs = assemble_sweep(plans, 2, fake_results(specs))
        assert [f.figure for f in figs] == ["A", "B"]
        assert figs[0].stats["a"]["x"].mean == pytest.approx(1.0)
        assert figs[1].stats["a"]["x"].mean == pytest.approx(2.0)

    def test_text_render_lists_every_series(self):
        plan = selftest_plan()
        specs = replicate_specs([plan], 2)
        (fig,) = assemble_sweep([plan], 2, fake_results(specs),
                                baseline="x")
        text = fig.render()
        assert "x=" in text and "y=" in text and "baseline=x" in text


class TestHtml:
    def figures(self, replicates=2, baseline="x"):
        plan = selftest_plan()
        specs = replicate_specs([plan], replicates)
        return assemble_sweep([plan], replicates, fake_results(specs),
                              baseline=baseline)

    def test_self_contained_no_external_assets(self):
        html = render_report_html(self.figures())
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "<style>" in html
        for needle in ("http://", "https://", "<script", "src="):
            assert needle not in html.replace(
                "http://www.w3.org/2000/svg", "")

    def test_deterministic_bytes(self):
        assert render_report_html(self.figures()) == \
            render_report_html(self.figures())

    def test_significance_marker_rendered(self):
        html = render_report_html(self.figures())
        assert '<span class="sig">*</span>' in html

    def test_values_and_labels_present(self):
        html = render_report_html(self.figures())
        assert "SelfTest" in html and "units" in html
