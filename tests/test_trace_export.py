"""Round-trip coverage for trace/export: Chrome trace_event JSON + CSV.

The Chrome schema is asserted field-by-field after a ``json.loads``
round-trip, for interval ("X") events, for the metrics counter ("C")
events merged from the flight recorder, and for the repro.obs span
slices plus their flow ("s"/"f") arrow pairs — the shapes Perfetto
requires.
"""

import csv
import io
import json

import pytest

from repro.obs.spans import Span
from repro.sim.environment import Environment
from repro.trace.events import TraceCategory
from repro.trace.export import span_events, to_csv, to_json
from repro.trace.tracer import Tracer


@pytest.fixture
def tracer():
    t = Tracer(Environment())
    t.record("pe0", TraceCategory.EXECUTE, 0.0, 0.004, "stencil.sweep")
    t.record("io0", TraceCategory.IO_FETCH, 0.001, 0.003, "fetch b3")
    t.record("io0", TraceCategory.IO_EVICT, 0.003, 0.0035, "evict b1")
    return t


COUNTERS = {
    "repro_hbm_used_bytes": [(0.0, 0.0), (0.002, 1024.0), (0.004, 512.0)],
    "repro_pe_wait_depth": [(0.0, 2.0)],
}


class TestJsonIntervalEvents:
    def test_round_trip_schema(self, tracer):
        doc = json.loads(to_json(tracer))
        events = doc["traceEvents"]
        assert len(events) == 3
        for ev in events:
            assert ev["ph"] == "X"
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], str)      # lane name
            assert isinstance(ev["ts"], float)
            assert isinstance(ev["dur"], float)
            assert ev["name"]

    def test_timestamps_in_microseconds(self, tracer):
        events = json.loads(to_json(tracer))["traceEvents"]
        fetch = next(e for e in events if e["name"] == "fetch b3")
        assert fetch["ts"] == pytest.approx(1000.0)
        assert fetch["dur"] == pytest.approx(2000.0)
        assert fetch["tid"] == "io0"
        assert fetch["cat"] == "io_fetch"

    def test_indent_still_parses(self, tracer):
        assert json.loads(to_json(tracer, indent=2))["traceEvents"]


class TestJsonCounterEvents:
    def test_counter_events_appended(self, tracer):
        events = json.loads(to_json(tracer, counters=COUNTERS))["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 4
        for ev in counters:
            assert ev["cat"] == "metrics"
            assert ev["pid"] == 0
            assert isinstance(ev["ts"], float)
            assert set(ev["args"]) == {"value"}
            assert "dur" not in ev

    def test_counter_values_and_times(self, tracer):
        events = json.loads(to_json(tracer, counters=COUNTERS))["traceEvents"]
        hbm = [e for e in events if e["ph"] == "C"
               and e["name"] == "repro_hbm_used_bytes"]
        assert [e["ts"] for e in hbm] == [0.0, 2000.0, 4000.0]
        assert [e["args"]["value"] for e in hbm] == [0.0, 1024.0, 512.0]

    def test_counter_tracks_sorted_by_name(self, tracer):
        events = json.loads(to_json(tracer, counters=COUNTERS))["traceEvents"]
        names = [e["name"] for e in events if e["ph"] == "C"]
        assert names == sorted(names)

    def test_counters_on_empty_tracer(self):
        t = Tracer(Environment())
        events = json.loads(to_json(t, counters=COUNTERS))["traceEvents"]
        assert all(e["ph"] == "C" for e in events)

    def test_no_counters_no_counter_events(self, tracer):
        events = json.loads(to_json(tracer, counters={}))["traceEvents"]
        assert all(e["ph"] == "X" for e in events)


#: a three-span causal chain: fetch on io0 -> execute on pe0 -> execute
#: on pe1 (cross-lane message edge), as SpanTracer would record it
SPANS = [
    Span(0, "io0", TraceCategory.IO_FETCH, 0.001, 0.003,
         "fetch b3", (), None, 7, "b3"),
    Span(1, "pe0", TraceCategory.EXECUTE, 0.003, 0.006,
         "Chare[0].kernel", (0,), 0, 7),
    Span(2, "pe1", TraceCategory.EXECUTE, 0.006, 0.008,
         "Chare[1].kernel", (1,), 1, 8),
]


class TestJsonSpanEvents:
    def doc(self, tracer, spans=SPANS):
        return json.loads(to_json(tracer, counters=COUNTERS, spans=spans))

    def test_span_slices_round_trip_schema(self, tracer):
        events = self.doc(tracer)["traceEvents"]
        slices = [e for e in events if e["ph"] == "X" and e["pid"] == 1]
        assert len(slices) == len(SPANS)
        for ev in slices:
            assert ev["cat"].startswith("span.")
            assert isinstance(ev["tid"], str)
            assert isinstance(ev["ts"], float)
            assert isinstance(ev["dur"], float)
            assert ev["name"]

    def test_span_pid_disjoint_from_interval_tracer(self, tracer):
        events = self.doc(tracer)["traceEvents"]
        tracer_pids = {e["pid"] for e in events
                       if e["ph"] == "X" and not e["cat"].startswith("span.")}
        span_pids = {e["pid"] for e in events
                     if e["ph"] == "X" and e["cat"].startswith("span.")}
        assert tracer_pids.isdisjoint(span_pids)

    def test_parent_and_causes_survive_round_trip(self, tracer):
        events = self.doc(tracer)["traceEvents"]
        by_sid = {e["args"]["sid"]: e for e in events
                  if e["ph"] == "X" and e["cat"].startswith("span.")}
        assert by_sid[0]["args"]["parent"] is None
        assert by_sid[1]["args"]["parent"] == 0
        assert by_sid[1]["args"]["causes"] == [0]
        assert by_sid[2]["args"]["causes"] == [1]
        assert by_sid[1]["args"]["task"] == 7
        assert by_sid[0]["args"]["block"] == "b3"

    def test_flow_pairs_for_each_causal_edge(self, tracer):
        events = self.doc(tracer)["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 2   # two causal edges
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        for ev in finishes:
            assert ev["bp"] == "e"     # bind to the slice's start
        for ev in starts + finishes:
            assert ev["cat"] == "flow"
            assert ev["pid"] == 1

    def test_flow_endpoints_land_on_the_right_lanes(self, tracer):
        events = self.doc(tracer)["traceEvents"]
        edges = set()
        for start in (e for e in events if e["ph"] == "s"):
            finish = next(e for e in events
                          if e["ph"] == "f" and e["id"] == start["id"])
            edges.add((start["tid"], finish["tid"]))
        assert edges == {("io0", "pe0"), ("pe0", "pe1")}

    def test_flow_timestamps_within_spans(self, tracer):
        events = self.doc(tracer)["traceEvents"]
        fetch_to_exec = next(e for e in events
                             if e["ph"] == "s" and e["tid"] == "io0")
        assert fetch_to_exec["ts"] == pytest.approx(3000.0)   # fetch end

    def test_dangling_cause_skipped(self):
        spans = [Span(5, "pe0", TraceCategory.EXECUTE, 0.0, 0.001,
                      "k", (99,), 99)]
        events = span_events(spans)
        assert all(e["ph"] not in ("s", "f") for e in events)

    def test_counters_spans_and_intervals_coexist(self, tracer):
        events = self.doc(tracer)["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"X", "C", "s", "f"}

    def test_no_spans_no_span_events(self, tracer):
        events = json.loads(to_json(tracer, spans=[]))["traceEvents"]
        assert all(not e["cat"].startswith("span.") for e in events)


class TestCsv:
    def test_header_and_row_shape(self, tracer):
        rows = list(csv.DictReader(io.StringIO(to_csv(tracer))))
        assert len(rows) == 3
        assert set(rows[0]) == {"lane", "category", "start_s", "end_s",
                                "duration_s", "label"}

    def test_values_round_trip(self, tracer):
        rows = list(csv.DictReader(io.StringIO(to_csv(tracer))))
        evict = next(r for r in rows if r["label"] == "evict b1")
        assert evict["lane"] == "io0"
        assert evict["category"] == "io_evict"
        assert float(evict["start_s"]) == pytest.approx(0.003)
        assert float(evict["duration_s"]) == pytest.approx(0.0005)

    def test_empty_tracer_has_header_only(self):
        text = to_csv(Tracer(Environment()))
        assert text.splitlines()[0].startswith("lane,")
        assert len(text.splitlines()) == 1
