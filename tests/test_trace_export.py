"""Round-trip coverage for trace/export: Chrome trace_event JSON + CSV.

The Chrome schema is asserted field-by-field after a ``json.loads``
round-trip, for interval ("X") events and for the metrics counter ("C")
events merged from the flight recorder — the shapes Perfetto requires.
"""

import csv
import io
import json

import pytest

from repro.sim.environment import Environment
from repro.trace.events import TraceCategory
from repro.trace.export import to_csv, to_json
from repro.trace.tracer import Tracer


@pytest.fixture
def tracer():
    t = Tracer(Environment())
    t.record("pe0", TraceCategory.EXECUTE, 0.0, 0.004, "stencil.sweep")
    t.record("io0", TraceCategory.IO_FETCH, 0.001, 0.003, "fetch b3")
    t.record("io0", TraceCategory.IO_EVICT, 0.003, 0.0035, "evict b1")
    return t


COUNTERS = {
    "repro_hbm_used_bytes": [(0.0, 0.0), (0.002, 1024.0), (0.004, 512.0)],
    "repro_pe_wait_depth": [(0.0, 2.0)],
}


class TestJsonIntervalEvents:
    def test_round_trip_schema(self, tracer):
        doc = json.loads(to_json(tracer))
        events = doc["traceEvents"]
        assert len(events) == 3
        for ev in events:
            assert ev["ph"] == "X"
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], str)      # lane name
            assert isinstance(ev["ts"], float)
            assert isinstance(ev["dur"], float)
            assert ev["name"]

    def test_timestamps_in_microseconds(self, tracer):
        events = json.loads(to_json(tracer))["traceEvents"]
        fetch = next(e for e in events if e["name"] == "fetch b3")
        assert fetch["ts"] == pytest.approx(1000.0)
        assert fetch["dur"] == pytest.approx(2000.0)
        assert fetch["tid"] == "io0"
        assert fetch["cat"] == "io_fetch"

    def test_indent_still_parses(self, tracer):
        assert json.loads(to_json(tracer, indent=2))["traceEvents"]


class TestJsonCounterEvents:
    def test_counter_events_appended(self, tracer):
        events = json.loads(to_json(tracer, counters=COUNTERS))["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 4
        for ev in counters:
            assert ev["cat"] == "metrics"
            assert ev["pid"] == 0
            assert isinstance(ev["ts"], float)
            assert set(ev["args"]) == {"value"}
            assert "dur" not in ev

    def test_counter_values_and_times(self, tracer):
        events = json.loads(to_json(tracer, counters=COUNTERS))["traceEvents"]
        hbm = [e for e in events if e["ph"] == "C"
               and e["name"] == "repro_hbm_used_bytes"]
        assert [e["ts"] for e in hbm] == [0.0, 2000.0, 4000.0]
        assert [e["args"]["value"] for e in hbm] == [0.0, 1024.0, 512.0]

    def test_counter_tracks_sorted_by_name(self, tracer):
        events = json.loads(to_json(tracer, counters=COUNTERS))["traceEvents"]
        names = [e["name"] for e in events if e["ph"] == "C"]
        assert names == sorted(names)

    def test_counters_on_empty_tracer(self):
        t = Tracer(Environment())
        events = json.loads(to_json(t, counters=COUNTERS))["traceEvents"]
        assert all(e["ph"] == "C" for e in events)

    def test_no_counters_no_counter_events(self, tracer):
        events = json.loads(to_json(tracer, counters={}))["traceEvents"]
        assert all(e["ph"] == "X" for e in events)


class TestCsv:
    def test_header_and_row_shape(self, tracer):
        rows = list(csv.DictReader(io.StringIO(to_csv(tracer))))
        assert len(rows) == 3
        assert set(rows[0]) == {"lane", "category", "start_s", "end_s",
                                "duration_s", "label"}

    def test_values_round_trip(self, tracer):
        rows = list(csv.DictReader(io.StringIO(to_csv(tracer))))
        evict = next(r for r in rows if r["label"] == "evict b1")
        assert evict["lane"] == "io0"
        assert evict["category"] == "io_evict"
        assert float(evict["start_s"]) == pytest.approx(0.003)
        assert float(evict["duration_s"]) == pytest.approx(0.0005)

    def test_empty_tracer_has_header_only(self):
        text = to_csv(Tracer(Environment()))
        assert text.splitlines()[0].startswith("lane,")
        assert len(text.splitlines()) == 1
