"""Unit tests for DataBlock (the CkIOHandle analog)."""

import pytest

from repro.errors import BlockStateError
from repro.mem.block import AccessIntent, BlockState, DataBlock


class TestAccessIntent:
    def test_reads_writes_matrix(self):
        assert AccessIntent.READONLY.reads and not AccessIntent.READONLY.writes
        assert AccessIntent.READWRITE.reads and AccessIntent.READWRITE.writes
        assert not AccessIntent.WRITEONLY.reads and AccessIntent.WRITEONLY.writes


class TestRefcount:
    def test_starts_at_zero(self):
        block = DataBlock("b", 100)
        assert block.refcount == 0
        assert not block.in_use

    def test_retain_release_cycle(self):
        block = DataBlock("b", 100)
        assert block.retain() == 1
        assert block.retain() == 2
        assert block.in_use
        assert block.release() == 1
        assert block.release() == 0
        assert not block.in_use

    def test_release_underflow_raises(self):
        with pytest.raises(BlockStateError):
            DataBlock("b", 100).release()

    def test_retain_records_schedule_time(self):
        block = DataBlock("b", 100)
        block.retain(now=12.5)
        assert block.last_scheduled_at == 12.5


class TestDemand:
    def test_demand_counts_pending_tasks(self):
        block = DataBlock("b", 100)
        block.add_demand(5)
        block.add_demand(9)
        assert block.demand == 2

    def test_next_use_is_min_pending_serial(self):
        block = DataBlock("b", 100)
        block.add_demand(9)
        block.add_demand(5)
        block.add_demand(7)
        assert block.next_use == 5
        block.drop_demand(5)
        assert block.next_use == 7

    def test_next_use_sentinel_when_idle(self):
        block = DataBlock("b", 100)
        assert block.next_use == 1 << 62

    def test_drop_unknown_serial_raises(self):
        block = DataBlock("b", 100)
        with pytest.raises(BlockStateError):
            block.drop_demand(3)

    def test_next_use_cache_updates_on_smaller_add(self):
        block = DataBlock("b", 100)
        block.add_demand(10)
        assert block.next_use == 10
        block.add_demand(2)
        assert block.next_use == 2


class TestStateMachine:
    def test_default_state_is_inddr(self):
        assert DataBlock("b", 8).state is BlockState.INDDR

    def test_begin_move_twice_raises(self):
        block = DataBlock("b", 8)
        block.begin_move()
        with pytest.raises(BlockStateError):
            block.begin_move()

    def test_settle_needs_concrete_state(self):
        block = DataBlock("b", 8)
        block.begin_move()
        with pytest.raises(BlockStateError):
            block.settle(None, BlockState.MOVING)

    def test_negative_size_rejected(self):
        with pytest.raises(BlockStateError):
            DataBlock("b", -1)

    def test_state_predicates(self):
        block = DataBlock("b", 8)
        assert block.in_ddr and not block.in_hbm and not block.moving
        block.begin_move()
        assert block.moving

    def test_unique_ids(self):
        a, b = DataBlock("a", 1), DataBlock("b", 1)
        assert a.bid != b.bid
