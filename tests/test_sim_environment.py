"""Unit tests for the environment / run loop."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.environment import Environment


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_to_time_advances_clock(self, env):
        env.timeout(1.0)
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_into_past_rejected(self, env):
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)


class TestRunLoop:
    def test_run_drains_queue(self, env):
        fired = []
        for delay in (3.0, 1.0, 2.0):
            env.timeout(delay).add_callback(lambda e, d=delay: fired.append(d))
        env.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_same_time_events_fifo(self, env):
        order = []
        for i in range(5):
            env.timeout(1.0).add_callback(lambda e, i=i: order.append(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_time(self, env):
        env.timeout(4.0)
        env.timeout(2.0)
        assert env.peek() == 2.0

    def test_run_until_event_returns_value(self, env):
        ev = env.event()
        env.timeout(1.0).add_callback(lambda e: ev.succeed("payload"))
        assert env.run(until=ev) == "payload"
        assert env.now == 1.0

    def test_run_until_unreachable_event_deadlocks(self, env):
        never = env.event()
        env.timeout(1.0)
        with pytest.raises(DeadlockError):
            env.run(until=never)

    def test_deadlock_lists_waiting_processes(self, env):
        def stuck(env):
            yield env.event()  # never fires

        env.process(stuck(env), name="stuck-proc")
        never = env.event()
        with pytest.raises(DeadlockError) as exc_info:
            env.run(until=never)
        assert "stuck-proc" in exc_info.value.waiting

    def test_run_until_failed_event_raises(self, env):
        ev = env.event()
        env.timeout(1.0).add_callback(lambda e: ev.fail(KeyError("k")))
        with pytest.raises(KeyError):
            env.run(until=ev)

    def test_run_until_time_leaves_later_events(self, env):
        fired = []
        env.timeout(5.0).add_callback(lambda e: fired.append(5))
        env.run(until=2.0)
        assert fired == []
        env.run()
        assert fired == [5]
