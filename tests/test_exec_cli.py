"""CLI integration for the exec engine: experiments -j, cache, race -j."""

import pytest

from repro.cli import main


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExperimentsEngine:
    def test_warm_rerun_is_cached_and_byte_identical(self, capsys,
                                                     cache_dir):
        argv = ["experiments", "--figures", "fig1", "-j", "2",
                "--cache-dir", cache_dir, "--cache-stats"]
        code, cold_out, cold_err = run_cli(capsys, argv)
        assert code == 0
        assert "Fig1" in cold_out
        assert "8 store(s)" in cold_err  # 4 kernels x 2 devices
        code, warm_out, warm_err = run_cli(capsys, argv)
        assert code == 0
        assert warm_out == cold_out
        assert "0 miss(es)" in warm_err

    def test_no_cache_bypasses_the_store(self, capsys, cache_dir):
        code, out, _ = run_cli(
            capsys, ["experiments", "--figures", "fig1", "--no-cache",
                     "--cache-dir", cache_dir])
        assert code == 0 and "Fig1" in out
        code, out, err = run_cli(
            capsys, ["cache", "stats", "--cache-dir", cache_dir])
        assert code == 0
        assert "total      : 0 entries" in out

    def test_unknown_figure_exits_2(self, capsys, cache_dir):
        code, _, err = run_cli(
            capsys, ["experiments", "--figures", "fig99",
                     "--cache-dir", cache_dir])
        assert code == 2
        assert "fig99" in err

    def test_progress_lines_go_to_stderr(self, capsys, cache_dir):
        _, out, err = run_cli(
            capsys, ["experiments", "--figures", "fig1",
                     "--cache-dir", cache_dir])
        assert "[1/" in err and "fig1/" in err
        assert "[1/" not in out


class TestCacheCommand:
    def test_stats_then_clear(self, capsys, cache_dir):
        run_cli(capsys, ["experiments", "--figures", "fig1",
                         "--cache-dir", cache_dir])
        code, out, _ = run_cli(capsys,
                               ["cache", "stats", "--cache-dir", cache_dir])
        assert code == 0
        assert "cache root" in out and "(current)" in out
        code, out, _ = run_cli(capsys,
                               ["cache", "clear", "--cache-dir", cache_dir])
        assert code == 0
        assert "removed" in out
        code, out, _ = run_cli(capsys,
                               ["cache", "stats", "--cache-dir", cache_dir])
        assert "total      : 0 entries" in out


class TestRaceParallel:
    ARGS = ["race", "--app", "stencil", "--explore-schedules", "2",
            "--cores", "4", "--mcdram", "64MiB", "--ddr", "256MiB",
            "--total", "64MiB", "--block", "16MiB", "--iterations", "1"]

    def test_parallel_exploration_matches_serial(self, capsys):
        code_s, out_s, _ = run_cli(capsys, self.ARGS)
        code_p, out_p, _ = run_cli(capsys, self.ARGS + ["-j", "2"])
        assert code_p == code_s
        assert out_p == out_s
        assert "explored 2 schedule(s)" in out_p
