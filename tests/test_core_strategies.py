"""Integration tests for the scheduling strategies on a tiny workload.

Uses a minimal prefetch application (one block per chare, one compute
round) to assert the per-strategy invariants of §IV-B:

* prefetch tasks only execute with every dependence ``INHBM``;
* HBM capacity is never exceeded;
* refcounts gate eviction;
* strategy-specific behaviours (who fetches, who evicts, signalling).
"""

import pytest

from repro.core.api import OOCRuntimeBuilder
from repro.core.strategies import STRATEGIES, make_strategy
from repro.errors import CapacityError, SchedulingError
from repro.mem.block import BlockState
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.units import GiB, MiB

HBM = 256 * MiB
DDR = 2 * GiB


class Worker(Chare):
    @entry
    def setup(self, nbytes, barrier):
        self.data = self.declare_block("data", nbytes)
        self.resident_at_compute = None
        barrier.contribute()

    @entry(prefetch=True, readwrite=["data"])
    def compute(self, reducer):
        self.resident_at_compute = self.data.state
        result = yield from self.kernel(
            flops=1e8, reads=[self.data], writes=[self.data])
        reducer.contribute(result.duration)


def run_app(strategy, *, chares=16, block=32 * MiB, rounds=2, cores=4,
            **builder_kwargs):
    built = OOCRuntimeBuilder(strategy, cores=cores, mcdram_capacity=HBM,
                              ddr_capacity=DDR, **builder_kwargs).build()
    rt = built.runtime
    arr = rt.create_array(Worker, chares)
    barrier = rt.reducer(chares)
    arr.broadcast("setup", block, barrier)
    rt.run_until(barrier.done)
    built.manager.finalize_placement()
    for _ in range(rounds):
        red = rt.reducer(chares)
        arr.broadcast("compute", red)
        rt.run_until(red.done)
    return built, arr


PREFETCH_STRATEGIES = ["single-io", "no-io", "multi-io"]
ALL_STRATEGIES = list(STRATEGIES)


class TestRegistryOfStrategies:
    def test_registry_contents(self):
        assert set(STRATEGIES) == {"naive", "ddr-only", "hbm-only",
                                   "single-io", "no-io", "multi-io",
                                   "static-guided", "phase-guided"}

    def test_make_strategy_by_name(self):
        assert make_strategy("multi-io").name == "multi-io"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("magic")


@pytest.mark.parametrize("strategy", PREFETCH_STRATEGIES)
class TestPrefetchInvariants:
    def test_all_tasks_execute_from_hbm(self, strategy):
        built, arr = run_app(strategy)
        assert all(c.resident_at_compute is BlockState.INHBM for c in arr)

    def test_all_tasks_complete(self, strategy):
        built, arr = run_app(strategy, rounds=3)
        assert built.manager.tasks_completed == 3 * len(arr)
        assert built.manager.tasks_intercepted == built.manager.tasks_completed

    def test_hbm_capacity_never_exceeded(self, strategy):
        built, _ = run_app(strategy)
        assert built.machine.hbm.allocator.peak_used <= HBM

    def test_initial_placement_all_ddr(self, strategy):
        """'data is allocated on DDR4 and fetched into MCDRAM' (§V-B)."""
        built = OOCRuntimeBuilder(strategy, cores=2, mcdram_capacity=HBM,
                                  ddr_capacity=DDR).build()
        rt = built.runtime
        arr = rt.create_array(Worker, 4)
        barrier = rt.reducer(4)
        arr.broadcast("setup", MiB, barrier)
        rt.run_until(barrier.done)
        built.manager.finalize_placement()
        assert all(c.data.state is BlockState.INDDR for c in arr)

    def test_fetch_and_evict_traffic_happened(self, strategy):
        built, _ = run_app(strategy)
        assert built.strategy.fetches > 0
        assert built.strategy.bytes_fetched > 0

    def test_registry_invariants_after_run(self, strategy):
        built, _ = run_app(strategy)
        built.machine.registry.check_invariants()

    def test_refcounts_drain_to_zero(self, strategy):
        built, arr = run_app(strategy)
        assert all(c.data.refcount == 0 for c in arr)
        assert all(c.data.demand == 0 for c in arr)

    def test_oversized_task_rejected(self, strategy):
        with pytest.raises(SchedulingError):
            run_app(strategy, chares=2, block=HBM + MiB)

    def test_deterministic_repeat(self, strategy):
        t1 = run_app(strategy)[0].env.now
        t2 = run_app(strategy)[0].env.now
        assert t1 == t2


class TestStaticStrategies:
    def test_naive_fills_hbm_then_spills(self):
        built, arr = run_app("naive", chares=16, block=32 * MiB)
        states = [c.data.state for c in arr]
        assert states.count(BlockState.INHBM) == 8   # 256 MiB / 32 MiB
        assert states.count(BlockState.INDDR) == 8
        assert built.strategy.fetches == 0

    def test_naive_fill_limit_honoured(self):
        built = OOCRuntimeBuilder(
            "naive", cores=2, mcdram_capacity=HBM, ddr_capacity=DDR,
            strategy_kwargs={"hbm_fill_limit": 64 * MiB}).build()
        rt = built.runtime
        arr = rt.create_array(Worker, 8)
        barrier = rt.reducer(8)
        arr.broadcast("setup", 32 * MiB, barrier)
        rt.run_until(barrier.done)
        built.manager.finalize_placement()
        in_hbm = sum(1 for c in arr if c.data.state is BlockState.INHBM)
        assert in_hbm == 2

    def test_ddr_only_places_everything_on_ddr(self):
        built, arr = run_app("ddr-only")
        assert all(c.data.state is BlockState.INDDR for c in arr)

    def test_hbm_only_requires_fit(self):
        with pytest.raises(CapacityError):
            run_app("hbm-only", chares=16, block=32 * MiB)  # 512 > 256 MiB

    def test_hbm_only_places_everything_in_hbm(self):
        built, arr = run_app("hbm-only", chares=4, block=32 * MiB)
        assert all(c.data.state is BlockState.INHBM for c in arr)

    def test_static_strategies_never_intercept(self):
        for name in ("naive", "ddr-only", "hbm-only"):
            built, _ = run_app(name, chares=4, block=16 * MiB)
            assert built.manager.tasks_intercepted == 0


class TestStrategySpecifics:
    def test_single_io_serialises_fetches(self):
        """One IO thread: fetch count equals total, all on lane io0."""
        built, _ = run_app("single-io")
        from repro.trace.events import TraceCategory
        lanes = {e.lane for e in built.runtime.tracer.events
                 if e.category is TraceCategory.IO_FETCH}
        assert lanes == {"io0"}

    def test_multi_io_spreads_fetches(self):
        built, _ = run_app("multi-io", cores=4)
        from repro.trace.events import TraceCategory
        lanes = {e.lane for e in built.runtime.tracer.events
                 if e.category is TraceCategory.IO_FETCH}
        assert len(lanes) > 1

    def test_multi_io_pins_io_threads_to_smt_siblings(self):
        built, _ = run_app("multi-io", cores=4)
        pinning = built.strategy.io_pinning
        for pe in built.runtime.pes:
            assert pinning[pe.id] == pe.core.smt_sibling().global_id

    def test_no_io_fetches_on_worker_lanes(self):
        built, _ = run_app("no-io")
        from repro.trace.events import TraceCategory
        fetch_lanes = {e.lane for e in built.runtime.tracer.events
                       if e.category is TraceCategory.PREPROCESS_FETCH}
        assert fetch_lanes and all(l.startswith("pe") for l in fetch_lanes)

    def test_no_io_charges_worker_overhead(self):
        built, _ = run_app("no-io")
        assert built.runtime.total_overhead_time() > 0

    def test_multi_io_worker_evict_mode(self):
        built, _ = run_app("multi-io",
                           strategy_kwargs={"evict_mode": "worker"})
        from repro.trace.events import TraceCategory
        evict_lanes = {e.lane for e in built.runtime.tracer.events
                       if e.category is TraceCategory.POSTPROCESS_EVICT}
        assert all(l.startswith("pe") for l in evict_lanes)

    def test_multi_io_bad_evict_mode_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            make_strategy("multi-io", evict_mode="bogus")

    def test_node_level_run_queue_option(self):
        built, arr = run_app("multi-io", node_level_run_queue=True)
        assert all(c.resident_at_compute is BlockState.INHBM for c in arr)
