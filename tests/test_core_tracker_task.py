"""Unit tests for HBMTracker and OOCTask."""

import pytest

from repro.core.hbm import HBMTracker
from repro.core.ooc_task import OOCTask, TaskState
from repro.errors import SchedulingError
from repro.machine.knl import build_knl
from repro.mem.block import AccessIntent, BlockState, DataBlock
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.runtime.message import Message
from repro.sim.environment import Environment
from repro.units import GiB, MiB


@pytest.fixture
def node():
    return build_knl(Environment(), cores=2, mcdram_capacity=GiB,
                     ddr_capacity=4 * GiB)


class TestHBMTracker:
    def test_budget_excludes_headroom(self, node):
        tracker = HBMTracker(node.hbm, headroom=256 * MiB)
        assert tracker.budget == 768 * MiB

    def test_can_fit_respects_reservations(self, node):
        tracker = HBMTracker(node.hbm)
        assert tracker.can_fit(GiB)
        tracker.reserve(900 * MiB)
        assert not tracker.can_fit(200 * MiB)
        assert tracker.rejected_fits == 1

    def test_can_fit_respects_allocations(self, node):
        tracker = HBMTracker(node.hbm)
        node.hbm.allocate(900 * MiB)
        assert not tracker.can_fit(200 * MiB)

    def test_reserve_over_capacity_raises(self, node):
        tracker = HBMTracker(node.hbm)
        with pytest.raises(SchedulingError):
            tracker.reserve(2 * GiB)

    def test_unreserve_restores(self, node):
        tracker = HBMTracker(node.hbm)
        tracker.reserve(512 * MiB)
        tracker.unreserve(512 * MiB)
        assert tracker.reserved == 0
        assert tracker.can_fit(GiB)

    def test_unreserve_underflow_raises(self, node):
        tracker = HBMTracker(node.hbm)
        with pytest.raises(SchedulingError):
            tracker.unreserve(1)

    def test_peak_reserved_tracked(self, node):
        tracker = HBMTracker(node.hbm)
        tracker.reserve(100)
        tracker.reserve(200)
        tracker.unreserve(300)
        assert tracker.peak_reserved == 300

    def test_negative_headroom_rejected(self, node):
        with pytest.raises(SchedulingError):
            HBMTracker(node.hbm, headroom=-1)


class _Dummy(Chare):
    @entry(prefetch=True, readwrite=["a"])
    def work(self):
        pass


def make_task(node, blocks_with_intents, pe_id=0):
    chare = _Dummy()
    spec = _Dummy._entry_specs["work"]
    msg = Message(chare, spec)
    return OOCTask(msg, pe_id, blocks_with_intents, now=0.0)


class TestOOCTask:
    def test_dedupes_blocks(self, node):
        block = DataBlock("shared", MiB)
        task = make_task(node, [(block, AccessIntent.READONLY),
                                (block, AccessIntent.READONLY)])
        assert len(task.deps) == 1

    def test_conflicting_intents_merge_to_readwrite(self, node):
        block = DataBlock("shared", MiB)
        task = make_task(node, [(block, AccessIntent.READONLY),
                                (block, AccessIntent.WRITEONLY)])
        assert task.deps[0][1] is AccessIntent.READWRITE

    def test_missing_blocks_and_residency(self, node):
        a, b = DataBlock("a", MiB), DataBlock("b", MiB)
        node.topology.place_block(a, node.hbm)
        node.topology.place_block(b, node.ddr)
        task = make_task(node, [(a, AccessIntent.READONLY),
                                (b, AccessIntent.READONLY)])
        assert task.missing_blocks() == [b]
        assert not task.all_resident()
        assert task.total_dep_bytes == 2 * MiB

    def test_retain_release_exactly_once(self, node):
        block = DataBlock("a", MiB)
        task = make_task(node, [(block, AccessIntent.READWRITE)])
        task.retain_all(1.0)
        assert block.refcount == 1
        with pytest.raises(SchedulingError):
            task.retain_all(2.0)
        task.release_all()
        assert block.refcount == 0
        with pytest.raises(SchedulingError):
            task.release_all()

    def test_fetch_latency_metric(self, node):
        block = DataBlock("a", MiB)
        task = make_task(node, [(block, AccessIntent.READONLY)])
        assert task.fetch_latency is None
        task.ready_at = 2.5
        assert task.fetch_latency == 2.5

    def test_initial_state(self, node):
        task = make_task(node, [(DataBlock("a", 1), AccessIntent.READONLY)])
        assert task.state is TaskState.WAITING
