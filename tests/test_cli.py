"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_stream_command(self, capsys):
        assert main(["stream", "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "Fig1" in out and "mcdram" in out

    def test_stencil_command(self, capsys):
        code = main(["stencil", "--strategy", "no-io", "--cores", "8",
                     "--mcdram", "128MiB", "--ddr", "1GiB",
                     "--total", "256MiB", "--block", "8MiB",
                     "--iterations", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tasks_completed : 32" in out

    def test_matmul_command(self, capsys):
        code = main(["matmul", "--strategy", "naive", "--cores", "8",
                     "--mcdram", "128MiB", "--ddr", "1GiB",
                     "--working-set", "64MiB", "--block-dim", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy        : naive" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "--figures", "fig1"]) == 0
        assert "Fig1" in capsys.readouterr().out

    def test_experiments_unknown_figure(self, capsys):
        assert main(["experiments", "--figures", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_bad_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["stencil", "--strategy", "wishful"])
