"""Tests for the repro.lint runtime sanitizer ("simsan").

Three layers: injected violations must be detected *at the violation site*;
clean integration runs (Stencil3D, MatMul) must finish with zero
violations; and the PR 1 bug classes (stuck-MOVING rollback, double
``stop()``, zero-PE setup) must stay fixed when re-run under the sanitizer.
"""

import pytest

from repro.apps.matmul import MatMul, MatMulConfig
from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.core.api import OOCRuntimeBuilder
from repro.errors import AllocationError, BlockStateError, ConfigError
from repro.lint import SimSanitizer, hooks
from repro.lint.findings import LintViolation
from repro.machine.knl import build_knl
from repro.mem.allocator import FreeListAllocator
from repro.mem.block import BlockState, DataBlock
from repro.sim.environment import Environment
from repro.units import GiB, MiB

HBM = 256 * MiB
DDR = 2 * GiB


@pytest.fixture
def node():
    return build_knl(Environment(), mcdram_capacity=64 * MiB,
                     ddr_capacity=GiB)


@pytest.fixture
def san():
    sanitizer = SimSanitizer(mode="record").install()
    yield sanitizer
    sanitizer.uninstall()


def place(node, name, nbytes, device):
    block = DataBlock(name, nbytes)
    node.registry.register(block)
    node.topology.place_block(block, device)
    return block


def rules(sanitizer):
    return [v.rule for v in sanitizer.violations]


def build(strategy="multi-io", cores=4):
    return OOCRuntimeBuilder(strategy, cores=cores, mcdram_capacity=HBM,
                             ddr_capacity=DDR, trace=False).build()


class TestLifecycle:
    def test_install_uninstall_clears_hook_slot(self):
        sanitizer = SimSanitizer().install()
        assert hooks.observer is sanitizer
        sanitizer.uninstall()
        assert hooks.observer is None

    def test_second_observer_fans_out(self, san):
        # the lint slot is shared: a second observer joins a FanOut
        # rather than being rejected (full coverage in test_hooks_multi)
        from repro.hooks import FanOut
        other = SimSanitizer().install()
        assert isinstance(hooks.observer, FanOut)
        other.uninstall()
        assert hooks.observer is san

    def test_context_manager(self):
        with SimSanitizer() as sanitizer:
            assert hooks.observer is sanitizer
        assert hooks.observer is None

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SimSanitizer(mode="loud")

    def test_off_by_default(self):
        assert hooks.observer is None


class TestInjectedViolations:
    def test_san202_retain_after_evict(self, node, san):
        block = place(node, "b", MiB, node.hbm)
        node.topology.release_block(block)
        block.retain()
        assert rules(san) == ["SAN202"]
        assert san.violations[0].block == "b"

    def test_san202_kernel_use_after_evict(self, node, san):
        block = place(node, "b", MiB, node.hbm)
        node.topology.release_block(block)
        proc = node.env.process(
            node.run_kernel_on_blocks(0, 0.0, [block], []))
        node.env.run(until=proc)
        assert "SAN202" in rules(san)
        assert "use-after-evict" in san.violations[0].message

    def test_san202_kernel_read_of_midmove_block(self, node, san):
        block = place(node, "b", MiB, node.ddr)
        node.env.process(node.mover.move(block, node.hbm))
        node.env.run(until=1e-5)  # move started, not finished
        assert block.moving
        proc = node.env.process(
            node.run_kernel_on_blocks(0, 0.0, [block], []))
        node.env.run(until=proc)
        assert "SAN202" in rules(san)

    def test_san203_double_free(self, node, san):
        block = place(node, "b", MiB, node.hbm)
        allocation = block.allocation
        node.topology.release_block(block)
        with pytest.raises(AllocationError):
            node.hbm.free(allocation)
        assert rules(san) == ["SAN203"]

    def test_san207_refcount_underflow(self, node, san):
        block = place(node, "b", MiB, node.hbm)
        with pytest.raises(BlockStateError):
            block.release()
        assert rules(san) == ["SAN207"]

    def test_raise_mode_stops_at_the_violation_site(self, node):
        block = place(node, "b", MiB, node.hbm)
        with SimSanitizer(mode="raise") as sanitizer:
            with pytest.raises(LintViolation) as exc_info:
                block.release()
        assert exc_info.value.rule == "SAN207"
        assert sanitizer.violations[0].rule == "SAN207"


class TestQuiescenceChecks:
    @pytest.fixture
    def bound(self):
        built = build()
        sanitizer = SimSanitizer(mode="record").install(built.manager)
        yield built, sanitizer
        sanitizer.uninstall()

    def test_clean_manager_is_quiescent(self, bound):
        built, sanitizer = bound
        assert built.manager.check_quiescent() == 0
        assert sanitizer.violations == []

    def test_san201_refcount_leak(self, bound):
        built, sanitizer = bound
        block = place(built.machine, "b", MiB, built.machine.ddr)
        block.retain()
        assert built.manager.check_quiescent() == 1
        assert rules(sanitizer) == ["SAN201"]
        assert sanitizer.violations[0].at is not None

    def test_san205_stuck_moving(self, bound):
        built, sanitizer = bound
        block = place(built.machine, "b", MiB, built.machine.ddr)
        block.begin_move()  # abandoned: no mover will ever settle it
        assert built.manager.check_quiescent() >= 1
        assert "SAN205" in rules(sanitizer)

    def test_san206_inflight_move_at_shutdown(self, bound):
        built, sanitizer = bound
        block = place(built.machine, "b", MiB, built.machine.ddr)
        built.manager.begin_inflight(block)
        built.manager.check_quiescent()
        assert "SAN206" in rules(sanitizer)

    def test_san208_event_queue_conservation_drift(self, bound):
        built, sanitizer = bound
        env = built.machine.env
        env.run()  # reach quiescence first: the drain loop has its own net
        env._live += 1  # corrupt the live-event counter
        try:
            sanitizer.check_quiescent(built.manager, drain=False)
        finally:
            env._live -= 1
        assert "SAN208" in rules(sanitizer)

    def test_san208_silent_on_clean_run(self, bound):
        """A real run through the new event core conserves its entries."""
        built, sanitizer = bound
        cfg = StencilConfig(total_bytes=8 * MiB, block_bytes=MiB,
                            iterations=1)
        Stencil3D(built, cfg).run()
        built.manager.check_quiescent()
        assert "SAN208" not in rules(sanitizer)

    def test_san204_books_vs_registry_mismatch(self, bound):
        built, sanitizer = bound
        place(built.machine, "b", MiB, built.machine.hbm)
        built.machine.hbm.allocator.used = 0  # corrupt the books
        sanitizer.check_now()
        assert "SAN204" in rules(sanitizer)

    def test_san204_books_over_capacity(self, bound):
        built, sanitizer = bound
        allocator = built.machine.hbm.allocator
        allocator.used = allocator.capacity + 1
        sanitizer.check_now()
        assert "SAN204" in rules(sanitizer)

    def test_drain_settles_inflight_background_evictions(self, bound):
        """A move legitimately in flight at the barrier is not 'stuck'."""
        built, sanitizer = bound
        block = place(built.machine, "b", MiB, built.machine.ddr)
        built.machine.env.process(
            built.machine.mover.move(block, built.machine.hbm))
        # without drain the block would still be MOVING mid-simulation;
        # check_quiescent(drain=True) runs the event queue dry first
        assert built.manager.check_quiescent() == 0
        assert block.state is BlockState.INHBM


class TestCleanIntegrationRuns:
    def test_stencil_multi_io_zero_violations(self):
        with SimSanitizer(mode="raise") as sanitizer:
            built = build("multi-io", cores=8)
            sanitizer.bind(built.manager)
            cfg = StencilConfig(total_bytes=512 * MiB, block_bytes=32 * MiB,
                                iterations=2)
            Stencil3D(built, cfg).run()
            assert built.manager.check_quiescent() == 0
        assert sanitizer.violations == []
        assert sanitizer.events_observed > 0

    def test_matmul_single_io_zero_violations(self):
        with SimSanitizer(mode="raise") as sanitizer:
            built = build("single-io", cores=8)
            sanitizer.bind(built.manager)
            cfg = MatMulConfig.for_working_set(128 * MiB, block_dim=64)
            MatMul(built, cfg).run()
            assert built.manager.check_quiescent() == 0
        assert sanitizer.violations == []


class TestPR1RegressionsUnderSanitizer:
    def test_fragmentation_rollback_leaves_no_stuck_moving(self, san):
        """PR 1 bug class: a mid-move CapacityError must roll the block
        back — the sanitizer must see a settle for every begin_move."""
        env = Environment()
        node = build_knl(env, mcdram_capacity=3 * MiB, ddr_capacity=GiB,
                         allocator_cls=FreeListAllocator)
        a = place(node, "a", MiB, node.hbm)
        b = place(node, "b", MiB, node.hbm)
        c = place(node, "c", MiB, node.hbm)
        node.topology.release_block(a)
        node.topology.release_block(c)
        big = place(node, "big", 2 * MiB - 4096, node.ddr)
        for move in (node.mover.move, node.mover.move_migrate_pages):
            proc = env.process(move(big, node.hbm))
            with pytest.raises(Exception):
                env.run(until=proc)
            assert not big.moving
        assert san.violations == []
        assert san._moving_since == {}

    def test_double_stop_is_quiescent(self, san):
        built = build("multi-io")
        san.bind(built.manager)
        built.strategy.stop()
        built.env.run()
        built.strategy.stop()
        assert built.manager.check_quiescent() == 0

    def test_zero_pe_setup_fails_loudly_with_sanitizer_active(self, san):
        from types import SimpleNamespace

        from repro.core.strategies import make_strategy
        strategy = make_strategy("multi-io")
        with pytest.raises(ConfigError, match="at least one PE"):
            strategy.attach(SimpleNamespace(
                env=Environment(), runtime=SimpleNamespace(pes=[])))
        assert san.violations == []
