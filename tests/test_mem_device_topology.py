"""Unit tests for MemoryDevice and MemoryTopology."""

import pytest

from repro.config import ConfigError
from repro.errors import CapacityError
from repro.machine.knl import build_knl
from repro.mem.allocator import PagedAllocator
from repro.mem.block import BlockState, DataBlock
from repro.mem.device import MemoryDevice
from repro.mem.topology import MemoryTopology
from repro.sim.environment import Environment
from repro.sim.fluid import FluidNetwork
from repro.units import GiB, MiB


def make_device(name="dev", node=0, capacity=GiB, read=90e9, write=80e9,
                env=None, network=None):
    env = env or Environment()
    network = network or FluidNetwork(env)
    return MemoryDevice(name=name, numa_node=node, capacity=capacity,
                        read_bandwidth=read, write_bandwidth=write,
                        latency=1e-7,
                        allocator=PagedAllocator(capacity), network=network)


class TestMemoryDevice:
    def test_creates_read_write_links(self):
        env = Environment()
        net = FluidNetwork(env)
        dev = make_device(env=env, network=net)
        assert net.link("dev.read") is dev.read_link
        assert net.link("dev.write") is dev.write_link

    def test_read_flow_drains_at_capacity(self):
        env = Environment()
        dev = make_device(env=env, network=FluidNetwork(env))
        flow = dev.read_flow(90e9)
        env.run(until=flow.done)
        assert env.now == pytest.approx(1.0)

    def test_mixed_flow_limited_by_weaker_port(self):
        env = Environment()
        dev = make_device(env=env, network=FluidNetwork(env))
        flow = dev.mixed_flow(40e9, 40e9)   # 80 GB total over write cap 80
        env.run(until=flow.done)
        assert env.now == pytest.approx(1.0)

    def test_traffic_counters(self):
        env = Environment()
        dev = make_device(env=env, network=FluidNetwork(env))
        dev.read_flow(100.0)
        dev.write_flow(50.0)
        assert dev.bytes_read == 100.0
        assert dev.bytes_written == 50.0

    def test_capacity_accounting_delegates(self):
        dev = make_device()
        a = dev.allocate(100)
        assert dev.used == 100
        dev.free(a)
        assert dev.available == dev.capacity

    def test_invalid_parameters_rejected(self):
        env = Environment()
        net = FluidNetwork(env)
        with pytest.raises(ConfigError):
            MemoryDevice("x", 0, 0, 1.0, 1.0, 0.0, PagedAllocator(1), net)
        with pytest.raises(ConfigError):
            MemoryDevice("x", 0, 10, -1.0, 1.0, 0.0, PagedAllocator(10), net)


class TestMemoryTopology:
    @pytest.fixture
    def topo(self):
        env = Environment()
        net = FluidNetwork(env)
        ddr = make_device("ddr4", 0, 4 * GiB, env=env, network=net)
        hbm = make_device("mcdram", 1, GiB, env=env, network=net)
        return MemoryTopology([ddr, hbm])

    def test_node_lookup(self, topo):
        assert topo.node(0).name == "ddr4"
        assert topo.node(1).name == "mcdram"
        assert topo.hbm.name == "mcdram"
        assert topo.ddr.name == "ddr4"

    def test_unknown_node_rejected(self, topo):
        with pytest.raises(ConfigError):
            topo.node(7)

    def test_duplicate_nodes_rejected(self):
        env = Environment()
        net = FluidNetwork(env)
        a = make_device("a", 0, GiB, env=env, network=net)
        b = make_device("b", 0, GiB, env=env, network=net)
        with pytest.raises(ConfigError):
            MemoryTopology([a, b])

    def test_numa_alloc_onnode(self, topo):
        alloc = topo.numa_alloc_onnode(1024, 1)
        assert topo.hbm.used == 1024
        topo.numa_free(alloc, 1)
        assert topo.hbm.used == 0

    def test_place_block_sets_state(self, topo):
        block = DataBlock("b", 64 * MiB)
        topo.place_block(block, topo.hbm)
        assert block.state is BlockState.INHBM
        assert block.device is topo.hbm
        assert block.allocation.live

    def test_state_for_maps_devices(self, topo):
        assert topo.state_for(topo.hbm) is BlockState.INHBM
        assert topo.state_for(topo.ddr) is BlockState.INDDR

    def test_place_preferred_spills(self, topo):
        """The Naive baseline's rule: HBM until full, then DDR4."""
        placed = []
        for i in range(6):
            block = DataBlock(f"b{i}", 256 * MiB)
            placed.append(topo.place_preferred(block, topo.hbm, topo.ddr))
        names = [d.name for d in placed]
        assert names[:4] == ["mcdram"] * 4      # 4 x 256 MiB fills 1 GiB
        assert names[4:] == ["ddr4"] * 2

    def test_double_place_rejected(self, topo):
        block = DataBlock("b", 1024)
        topo.place_block(block, topo.hbm)
        with pytest.raises(ConfigError):
            topo.place_block(block, topo.ddr)

    def test_release_block(self, topo):
        block = DataBlock("b", 1024)
        topo.place_block(block, topo.hbm)
        topo.release_block(block)
        assert topo.hbm.used == 0
        with pytest.raises(CapacityError):
            topo.release_block(block)

    def test_usage_summary(self, topo):
        block = DataBlock("b", 1024)
        topo.place_block(block, topo.ddr)
        assert topo.usage() == {"ddr4": 1024, "mcdram": 0}


class TestKNLFactory:
    def test_flat_mode_has_two_devices(self):
        node = build_knl(Environment())
        assert [d.name for d in node.topology.devices] == ["ddr4", "mcdram"]
        assert node.mcdram_cache is None

    def test_capacities_match_paper(self):
        node = build_knl(Environment())
        assert node.hbm.capacity == 16 * GiB
        assert node.ddr.capacity == 96 * GiB

    def test_bandwidth_ratio_exceeds_4x(self):
        """Fig 1's headline: MCDRAM has over 4x the DDR4 bandwidth."""
        node = build_knl(Environment())
        assert node.hbm.read_bandwidth / node.ddr.read_bandwidth > 4.0

    def test_cache_mode_single_device_plus_cache(self):
        from repro.config import MemoryMode
        node = build_knl(Environment(), memory_mode=MemoryMode.CACHE)
        assert [d.name for d in node.topology.devices] == ["ddr4"]
        assert node.mcdram_cache is not None
        assert node.mcdram_cache.capacity == 16 * GiB

    def test_hybrid_mode_splits_mcdram(self):
        from repro.config import MemoryMode
        node = build_knl(Environment(), memory_mode=MemoryMode.HYBRID,
                         hybrid_cache_fraction=0.25)
        assert node.hbm.capacity == 12 * GiB
        assert node.mcdram_cache.capacity == 4 * GiB

    def test_quadrant_mode_boosts_bandwidth(self):
        from repro.config import ClusterMode
        a2a = build_knl(Environment())
        quad = build_knl(Environment(), cluster_mode=ClusterMode.QUADRANT)
        assert quad.hbm.read_bandwidth > a2a.hbm.read_bandwidth
        assert quad.hbm.latency < a2a.hbm.latency
