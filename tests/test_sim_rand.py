"""Tests for deterministic random streams."""

import numpy as np

from repro.sim.rand import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("workload").random(5)
        b = RandomStreams(7).stream("workload").random(5)
        assert np.array_equal(a, b)

    def test_named_streams_independent(self):
        streams = RandomStreams(7)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert not np.array_equal(a, b)

    def test_stream_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        s1 = RandomStreams(3)
        first = s1.stream("main").random(4)
        s2 = RandomStreams(3)
        s2.stream("other")            # extra consumer created first
        second = s2.stream("main").random(4)
        assert np.array_equal(first, second)

    def test_fork_gives_new_family(self):
        base = RandomStreams(3)
        fork = base.fork("trial-1")
        assert fork.seed != base.seed
        a = base.stream("m").random(3)
        b = fork.stream("m").random(3)
        assert not np.array_equal(a, b)

    def test_fork_deterministic(self):
        assert RandomStreams(3).fork("x").seed == RandomStreams(3).fork("x").seed
