"""Integration test: the Figure 8 orderings hold at miniature scale.

A fast (seconds) version of the paper's central result, so regressions in
scheduling behaviour fail the unit suite, not just the benchmarks.
"""

import pytest

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.core.api import OOCRuntimeBuilder
from repro.units import GiB, MiB

HBM = 512 * MiB
DDR = 3 * GiB
TOTAL = 1 * GiB         # 2x over-subscription like the paper's 32 vs 16
BLOCK = 2 * MiB
ITERATIONS = 3


@pytest.fixture(scope="module")
def times():
    out = {}
    for strategy in ("naive", "ddr-only", "single-io", "no-io", "multi-io"):
        built = OOCRuntimeBuilder(strategy, cores=64, mcdram_capacity=HBM,
                                  ddr_capacity=DDR, trace=False).build()
        cfg = StencilConfig(total_bytes=TOTAL, block_bytes=BLOCK,
                            iterations=ITERATIONS)
        out[strategy] = Stencil3D(built, cfg).run().total_time
    return out


class TestFigure8Orderings:
    def test_ddr_only_slower_than_naive(self, times):
        assert times["ddr-only"] > times["naive"]

    def test_single_io_slower_than_naive(self, times):
        """The paper's headline negative result for one IO thread."""
        assert times["single-io"] > times["naive"]

    def test_no_io_beats_naive(self, times):
        assert times["no-io"] < times["naive"]

    def test_multi_io_is_best(self, times):
        assert times["multi-io"] == min(times.values())

    def test_multi_io_speedup_in_paper_band(self, times):
        speedup = times["naive"] / times["multi-io"]
        assert 1.5 < speedup < 3.5

    def test_full_ordering(self, times):
        assert (times["multi-io"] < times["no-io"] < times["naive"]
                < times["single-io"])
