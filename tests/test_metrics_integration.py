"""End-to-end: a stencil run under MetricsSession.

The acceptance-critical property: the pushed ``repro_hbm_used_bytes``
gauge is updated at exactly the points the manager samples its
``occupancy_log``, so its high-water mark must agree with the
``occupancy_stats`` peak of the same run.
"""

import pytest

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.core.api import OOCRuntimeBuilder
from repro.metrics import MetricsSession, hooks
from repro.trace.occupancy import occupancy_stats
from repro.units import MiB


def _build(strategy="multi-io", trace=True):
    return OOCRuntimeBuilder(strategy, cores=8,
                             mcdram_capacity=64 * MiB,
                             ddr_capacity=512 * MiB,
                             trace=trace).build()


@pytest.fixture
def run():
    built = _build()
    session = MetricsSession(built, app="stencil", cadence=0.01)
    cfg = StencilConfig(total_bytes=128 * MiB, block_bytes=8 * MiB,
                        iterations=2)
    Stencil3D(built, cfg).run()
    session.finish()
    return built, session


class TestHbmAgreement:
    def test_hwm_gauge_equals_occupancy_peak(self, run):
        built, session = run
        manager = built.manager
        assert manager.occupancy_log, "run must have logged occupancy"
        gauge = session.registry.get("repro_hbm_used_bytes")
        assert gauge is not None
        peak_bytes = max(used for _, used in manager.occupancy_log)
        assert gauge.high_water == peak_bytes
        stats = occupancy_stats(manager.occupancy_log,
                                built.machine.hbm.capacity)
        assert gauge.high_water / built.machine.hbm.capacity == \
            pytest.approx(stats["peak"])


class TestCountersMatchStrategy:
    def test_fetch_counters_agree_with_strategy_stats(self, run):
        built, session = run
        reg = session.registry
        strategy = built.manager.strategy
        assert reg.total("repro_fetched_bytes_total") == \
            strategy.bytes_fetched
        assert reg.total("repro_evictions_total") == strategy.evictions

    def test_mover_counters_agree_with_mover(self, run):
        built, session = run
        reg = session.registry
        mover = built.machine.mover
        assert reg.total("repro_moves_total") == mover.moves_completed
        assert reg.total("repro_moved_bytes_total") == mover.bytes_moved

    def test_inflight_gauge_is_consistent(self, run):
        # speculative prefetches may still be mid-move when the app's
        # last task completes, so the gauge need not end at zero — but it
        # can never go negative and the high-water mark bounds it
        built, session = run
        gauge = session.registry.get("repro_moves_inflight")
        assert gauge is not None
        assert gauge.low_water >= 0.0
        assert gauge.high_water >= max(1.0, gauge.value)

    def test_eviction_reasons_labelled(self, run):
        _, session = run
        reasons = {dict(i.labels).get("reason")
                   for i in session.registry.instruments()
                   if i.name == "repro_evictions_total"}
        # multi-io evicts synchronously after each task (the paper's
        # post-processing step)
        assert "post-task" in reasons


class TestPolledBindings:
    def test_tier_gauges_present_for_both_tiers(self, run):
        _, session = run
        tiers = {dict(i.labels).get("tier")
                 for i in session.registry.instruments()
                 if i.name == "repro_mem_used_bytes"}
        assert tiers == {"mcdram", "ddr4"}

    def test_pe_time_accounting_sampled(self, run):
        built, session = run
        total_busy = session.registry.total("repro_pe_busy_seconds")
        expected = sum(pe.busy_time for pe in built.runtime.pes)
        assert total_busy == pytest.approx(expected)

    def test_recorder_took_cadence_snapshots(self, run):
        _, session = run
        assert session.recorder.snapshots_taken >= 3
        assert session.recorder.stopped_at is not None


class TestSessionLifecycle:
    def test_hook_slot_released_after_finish(self, run):
        assert hooks.registry is None

    def test_finish_idempotent(self, run):
        _, session = run
        before = session.recorder.snapshots_taken
        session.finish()
        assert session.recorder.snapshots_taken == before

    def test_context_manager_releases_on_error(self):
        built = _build(trace=False)
        with pytest.raises(RuntimeError):  # noqa: SIM117 - deliberate nesting
            with MetricsSession(built, app="t") as session:
                assert hooks.registry is session.registry
                raise RuntimeError("boom")
        assert hooks.registry is None
        built.runtime.shutdown()

    def test_disabled_run_records_nothing(self):
        built = _build(trace=False)
        cfg = StencilConfig(total_bytes=32 * MiB, block_bytes=8 * MiB,
                            iterations=1)
        Stencil3D(built, cfg).run()
        assert hooks.registry is None  # nothing installed, nothing leaked
