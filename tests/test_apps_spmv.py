"""Tests for the iterated SpMV application."""

import pytest

from repro.apps.spmv import SpMV, SpMVConfig
from repro.core.api import OOCRuntimeBuilder
from repro.core.eviction import LRUEviction, OwnBlocksEviction
from repro.errors import ConfigError
from repro.units import GiB, MiB


def builder(strategy, cores=8, **kwargs):
    return OOCRuntimeBuilder(strategy, cores=cores,
                             mcdram_capacity=128 * MiB,
                             ddr_capacity=2 * GiB, trace=False, **kwargs)


class TestSpMVConfig:
    def test_pattern_is_deterministic(self):
        cfg = SpMVConfig(block_rows=16, seed=4)
        assert cfg.coupling_pattern() == cfg.coupling_pattern()
        other = SpMVConfig(block_rows=16, seed=5)
        assert cfg.coupling_pattern() != other.coupling_pattern()

    def test_pattern_includes_diagonal(self):
        cfg = SpMVConfig(block_rows=16, couplings=3)
        for row, cols in enumerate(cfg.coupling_pattern()):
            assert row in cols
            assert len(cols) == 3

    def test_banded_pattern_stays_near_diagonal(self):
        cfg = SpMVConfig(block_rows=64, couplings=3, banded=1.0)
        for row, cols in enumerate(cfg.coupling_pattern()):
            for col in cols:
                distance = min(abs(col - row), 64 - abs(col - row))
                assert distance <= 2

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            SpMVConfig(block_rows=0)
        with pytest.raises(ConfigError):
            SpMVConfig(couplings=0)
        with pytest.raises(ConfigError):
            SpMVConfig(banded=1.5)

    def test_intensity_is_sub_flop_per_byte(self):
        """SpMV is the textbook bandwidth-bound kernel."""
        cfg = SpMVConfig()
        intensity = cfg.flops_per_task / cfg.block_bytes
        assert intensity < 1.0


class TestSpMVRuns:
    def test_completes_all_iterations(self):
        built = builder("multi-io").build()
        cfg = SpMVConfig(block_rows=32, block_bytes=8 * MiB, iterations=3)
        result = SpMV(built, cfg).run()
        assert result.tasks_completed == 32 * 3
        assert len(result.iteration_times) == 3

    def test_cross_iteration_reuse_under_lru(self):
        """When everything fits, LRU keeps blocks resident: after the
        first iteration no further fetches happen."""
        built = builder("multi-io", eviction=LRUEviction()).build()
        cfg = SpMVConfig(block_rows=8, block_bytes=4 * MiB, iterations=4)
        app = SpMV(built, cfg)
        app.run()
        matrix_fetches = sum(
            1 for b in built.machine.registry if b.name.endswith(".A")
            and b.bytes_moved > b.nbytes)
        assert matrix_fetches == 0  # each A block moved exactly once

    def test_shared_x_blocks_counted_once(self):
        built = builder("naive").build()
        cfg = SpMVConfig(block_rows=16, couplings=4)
        SpMV(built, cfg)
        x_blocks = [b for b in built.machine.registry if "('x'" in b.name]
        assert len(x_blocks) == 16  # shared, not duplicated per consumer

    def test_reuse_makes_prefetch_beat_ddr_only(self):
        """SpMV reads each byte once per iteration, so out-of-core tiering
        pays off through *cross-iteration* reuse: once the matrix fits in
        HBM, iterations 2+ run at HBM speed while DDR-only stays slow."""
        cfg = SpMVConfig(block_rows=16, block_bytes=4 * MiB, iterations=6)
        times = {}
        for strategy in ("ddr-only", "multi-io"):
            built = builder(strategy, cores=32).build()
            times[strategy] = SpMV(built, cfg).run().total_time
        assert times["multi-io"] < times["ddr-only"]

    def test_oversubscribed_single_sweep_gains_nothing(self):
        """The flip side (and a real property of tiering): with no reuse
        inside an iteration and a working set larger than HBM, moving data
        costs as much as computing on it in place."""
        cfg = SpMVConfig(block_rows=64, block_bytes=4 * MiB, iterations=3)
        times = {}
        for strategy in ("ddr-only", "multi-io"):
            built = builder(strategy, cores=32).build()
            times[strategy] = SpMV(built, cfg).run().total_time
        assert times["multi-io"] > times["ddr-only"] * 0.8  # no free lunch

    def test_deterministic(self):
        def run():
            built = builder("single-io").build()
            cfg = SpMVConfig(block_rows=24, iterations=2)
            return SpMV(built, cfg).run().total_time
        assert run() == run()
