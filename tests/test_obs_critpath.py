"""Critical-path profiler: conservation, attribution and chains.

The ISSUE's acceptance criteria live here:

* the per-category contributions must sum to the makespan within 1e-6
  relative on stencil, matmul and spmv runs (conservative decomposition);
* on a fits-in-HBM ``hbm-only`` run — no interception, so the walk is
  pure compute — the compute contribution must equal the metrics
  digest's ``repro_pe_busy_seconds_hwm`` from the same run.
"""

import pytest

from repro.apps.matmul import MatMul, MatMulConfig
from repro.apps.spmv import SpMV, SpMVConfig
from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.core.api import OOCRuntimeBuilder
from repro.metrics import MetricsSession, digest
from repro.obs import BUCKETS, SpanTracer, critical_path
from repro.obs.spans import Span
from repro.trace.events import TraceCategory
from repro.units import GiB, MiB

REL_TOL = 1e-6


def traced(strategy, app, *, cores=8, mcdram=128 * MiB, ddr=2 * GiB,
           metrics=False):
    built = OOCRuntimeBuilder(strategy, cores=cores,
                              mcdram_capacity=mcdram,
                              ddr_capacity=ddr).build()
    session = MetricsSession(built, app="app") if metrics else None
    tracer = SpanTracer(built.env).install()
    try:
        window_start = built.env.now
        if app == "stencil":
            Stencil3D(built, StencilConfig(total_bytes=256 * MiB,
                                           block_bytes=16 * MiB,
                                           iterations=2)).run()
        elif app == "matmul":
            MatMul(built, MatMulConfig.for_working_set(
                96 * MiB, block_dim=64)).run()
        else:
            SpMV(built, SpMVConfig(block_rows=32, block_bytes=4 * MiB,
                                   vector_bytes=512 * 1024, couplings=2,
                                   iterations=2)).run()
    finally:
        tracer.uninstall()
        if session is not None:
            session.finish()
    report = critical_path(tracer.spans, start=window_start,
                           end=built.env.now)
    run_digest = digest(session.registry) if session is not None else None
    return tracer, report, run_digest


class TestConservation:
    """Contributions telescope to exactly the makespan (1e-6 relative)."""

    @pytest.mark.parametrize("app", ["stencil", "matmul", "spmv"])
    def test_multi_io_sums_to_makespan(self, app):
        _tracer, report, _ = traced("multi-io", app)
        total = sum(report.contributions.values())
        assert report.makespan > 0
        assert total == pytest.approx(report.makespan, rel=REL_TOL)

    @pytest.mark.parametrize("strategy", ["naive", "no-io", "single-io"])
    def test_other_strategies_sum_to_makespan(self, strategy):
        _tracer, report, _ = traced(strategy, "stencil")
        total = sum(report.contributions.values())
        assert total == pytest.approx(report.makespan, rel=REL_TOL)

    def test_per_lane_rows_sum_to_contributions(self):
        _tracer, report, _ = traced("multi-io", "stencil")
        for bucket in BUCKETS:
            lane_total = sum(row.get(bucket, 0.0)
                             for row in report.by_lane.values())
            assert lane_total == pytest.approx(
                report.contributions[bucket], rel=REL_TOL, abs=1e-15)

    def test_steps_are_contiguous_and_cover_the_window(self):
        _tracer, report, _ = traced("multi-io", "spmv")
        assert report.steps[0].begin == pytest.approx(report.start)
        assert report.steps[-1].end == pytest.approx(report.end)
        for prev, nxt in zip(report.steps, report.steps[1:]):
            assert nxt.begin == pytest.approx(prev.end, rel=REL_TOL)


class TestComputeShareMatchesMetrics:
    """hbm-only + fits-in-HBM: the path is pure compute == PE busy HWM."""

    @pytest.mark.parametrize("app", ["stencil", "matmul", "spmv"])
    def test_compute_equals_pe_busy_hwm(self, app):
        _tracer, report, run_digest = traced(
            "hbm-only", app, mcdram=2 * GiB, ddr=4 * GiB, metrics=True)
        busy = run_digest["repro_pe_busy_seconds_hwm"]
        assert busy > 0
        assert report.contributions["compute"] == pytest.approx(
            busy, rel=REL_TOL)

    def test_hbm_only_path_has_no_fetch_or_evict(self):
        tracer, report, _ = traced("hbm-only", "stencil",
                                   mcdram=2 * GiB, ddr=4 * GiB)
        assert report.contributions["fetch"] == 0.0
        assert report.contributions["evict"] == 0.0
        cats = {s.category for s in tracer.spans}
        assert cats == {TraceCategory.EXECUTE}


class TestOutOfCoreAttribution:
    def test_fetch_appears_on_out_of_core_path(self):
        _tracer, report, _ = traced("multi-io", "spmv")
        assert report.contributions["fetch"] > 0

    def test_naive_has_no_movement_on_the_path(self):
        # naive statically places and never moves: kernels stream from
        # wherever blocks landed, so the path shows zero fetch/evict —
        # the slowdown is *inside* the compute bucket (DDR bandwidth)
        _tracer, report, _ = traced("naive", "stencil")
        assert report.contributions["fetch"] == 0.0
        assert report.contributions["evict"] == 0.0
        assert report.contributions["compute"] > 0


class TestChains:
    def test_chains_sorted_longest_first(self):
        _tracer, report, _ = traced("multi-io", "stencil")
        durations = [chain.duration for chain in report.chains]
        assert durations == sorted(durations, reverse=True)

    def test_chain_render_names_blocks_and_entries(self):
        _tracer, report, _ = traced("multi-io", "stencil")
        rendered = "\n".join(c.render() for c in report.chains[:5])
        assert "fetch " in rendered or ".compute_kernel" in rendered

    def test_report_render_mentions_every_bucket(self):
        _tracer, report, _ = traced("multi-io", "stencil")
        text = report.render(title="t")
        for bucket in BUCKETS:
            assert bucket.replace("_", "-") in text


class TestSyntheticEdgeCases:
    def span(self, sid, lane, cat, start, end, causes=()):
        return Span(sid, lane, cat, start, end, f"s{sid}", tuple(causes))

    def test_empty_spans_empty_report(self):
        report = critical_path([])
        assert report.makespan == 0.0
        assert report.steps == []

    def test_single_span_is_all_compute(self):
        spans = [self.span(0, "pe0", TraceCategory.EXECUTE, 1.0, 3.0)]
        report = critical_path(spans)
        assert report.contributions["compute"] == pytest.approx(2.0)
        assert sum(report.contributions.values()) == pytest.approx(2.0)

    def test_gap_between_spans_charges_scheduling(self):
        spans = [self.span(0, "pe0", TraceCategory.EXECUTE, 0.0, 1.0),
                 self.span(1, "pe0", TraceCategory.EXECUTE, 2.0, 3.0)]
        report = critical_path(spans)
        assert report.contributions["compute"] == pytest.approx(2.0)
        assert report.contributions["scheduling"] == pytest.approx(1.0)

    def test_causal_jump_beats_lane_gap(self):
        # pe1's span is enabled by pe0's, which covers the gap on pe1
        spans = [self.span(0, "pe0", TraceCategory.EXECUTE, 0.0, 2.0),
                 self.span(1, "pe1", TraceCategory.EXECUTE, 2.0, 3.0,
                           causes=(0,))]
        report = critical_path(spans)
        assert report.contributions["compute"] == pytest.approx(3.0)
        assert report.contributions["scheduling"] == pytest.approx(0.0)

    def test_explicit_window_tail_charged_to_scheduling(self):
        spans = [self.span(0, "pe0", TraceCategory.EXECUTE, 0.0, 1.0)]
        report = critical_path(spans, start=0.0, end=4.0)
        assert report.contributions["scheduling"] == pytest.approx(3.0)
        assert sum(report.contributions.values()) == pytest.approx(4.0)
