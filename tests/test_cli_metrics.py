"""CLI coverage for --metrics and the `repro metrics` subcommand."""

import json

import pytest

from repro.cli import main
from repro.metrics import hooks
from repro.metrics.export import validate_exposition

SMALL_STENCIL = ["--cores", "8", "--mcdram", "128MiB", "--ddr", "1GiB",
                 "--total", "128MiB", "--block", "8MiB", "--iterations", "1"]


@pytest.fixture(autouse=True)
def clean_hook_slot():
    yield
    # a failed run must never leak a registry into the next test
    assert hooks.registry is None


class TestMetricsFlag:
    def test_stencil_metrics_report(self, capsys):
        code = main(["stencil", "--strategy", "multi-io", "--metrics",
                     "--format", "report", *SMALL_STENCIL])
        assert code == 0
        out = capsys.readouterr().out
        assert "flight recorder report: stencil" in out
        assert "repro_moved_bytes_total" in out
        assert "-- histograms" in out

    def test_stencil_metrics_prom_validates(self, capsys):
        code = main(["stencil", "--strategy", "multi-io", "--metrics",
                     "--format", "prom", *SMALL_STENCIL])
        assert code == 0
        out = capsys.readouterr().out
        # stdout = app summary then the exposition; validate the latter
        start = out.index("# HELP")
        assert validate_exposition(out[start:]) == []
        assert "# TYPE repro_moves_total counter" in out

    def test_matmul_metrics(self, capsys):
        code = main(["matmul", "--strategy", "multi-io", "--metrics",
                     "--cores", "8", "--mcdram", "128MiB", "--ddr", "1GiB",
                     "--working-set", "64MiB", "--block-dim", "64"])
        assert code == 0
        assert "flight recorder report: matmul" in capsys.readouterr().out

    def test_without_flag_no_metrics_output(self, capsys):
        code = main(["stencil", "--strategy", "multi-io", *SMALL_STENCIL])
        assert code == 0
        assert "flight recorder" not in capsys.readouterr().out


class TestMetricsSubcommand:
    def test_report_default(self, capsys):
        code = main(["metrics", "--app", "stencil", "--strategy", "multi-io",
                     *SMALL_STENCIL])
        assert code == 0
        assert "flight recorder report" in capsys.readouterr().out

    def test_stream_app_json(self, capsys):
        code = main(["metrics", "--app", "stream", "--cores", "4",
                     "--mcdram", "64MiB", "--ddr", "512MiB",
                     "--chares", "8", "--array", "2MiB",
                     "--format", "json"])
        assert code == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert doc["schema"] == 1
        assert any(i["name"] == "repro_mem_used_bytes"
                   for i in doc["instruments"])

    def test_watch_narration(self, capsys):
        code = main(["metrics", "--app", "stencil", "--watch",
                     "--metrics-interval", "0.005", *SMALL_STENCIL])
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if "hbm=" in l]
        assert len(lines) >= 2
        assert "waitq=" in lines[0] and "moved=" in lines[0]

    def test_trace_out_merges_counter_events(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main(["metrics", "--app", "stencil", "--trace-out", str(path),
                     *SMALL_STENCIL])
        assert code == 0
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "C"}
        counter = next(e for e in doc["traceEvents"] if e["ph"] == "C")
        assert counter["cat"] == "metrics"
        assert "value" in counter["args"]
