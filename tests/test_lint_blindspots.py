"""Regression tests for static-checker blind spots (ISSUE 7 satellite).

Each test seeds a real defect (an undeclared kernel dependence, REP101)
behind one of the aliasing idioms the checker used to miss: decorator
aliases, ``self``/method aliases at the call site, and kernels launched
from nested helper methods.  The defect must still be detected.
"""

import textwrap

from repro.lint import check_source


def lint(body: str):
    return check_source(textwrap.dedent(body), filename="t.py")


def rule_ids(findings):
    return sorted(f.rule for f in findings)


class TestEntryDecoratorAliases:
    def test_import_alias(self):
        findings = lint("""
            from repro.runtime.entry import entry as kernel_entry

            class C(Chare):
                @kernel_entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.a, self.b],
                                           writes=[])
        """)
        assert "REP101" in rule_ids(findings)

    def test_module_level_assignment_alias(self):
        findings = lint("""
            my_entry = entry

            class C(Chare):
                @my_entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.a, self.b],
                                           writes=[])
        """)
        assert "REP101" in rule_ids(findings)

    def test_alias_of_alias_resolves_transitively(self):
        findings = lint("""
            from repro.runtime.entry import entry as e1
            e2 = e1

            class C(Chare):
                @e2(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self.kernel(flops=1, reads=[self.a, self.b],
                                           writes=[])
        """)
        assert "REP101" in rule_ids(findings)


class TestCallSiteAliases:
    def test_bound_method_alias(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    kern = self.kernel
                    yield from kern(flops=1, reads=[self.a, self.b],
                                    writes=[])
        """)
        assert "REP101" in rule_ids(findings)

    def test_self_alias(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    this = self
                    yield from this.kernel(flops=1, reads=[self.a, self.b],
                                           writes=[])
        """)
        assert "REP101" in rule_ids(findings)


class TestHelperInlining:
    def test_kernel_in_helper_attributed_to_entry(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self._launch()

                def _launch(self):
                    yield from self.kernel(flops=1, reads=[self.a, self.b],
                                           writes=[])
        """)
        assert "REP101" in rule_ids(findings)

    def test_nested_helpers_inline_transitively(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self._outer()

                def _outer(self):
                    yield from self._inner()

                def _inner(self):
                    yield from self.kernel(flops=1, reads=[self.a, self.b],
                                           writes=[])
        """)
        assert "REP101" in rule_ids(findings)

    def test_mutually_recursive_helpers_terminate(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self._ping()

                def _ping(self):
                    yield from self._pong()

                def _pong(self):
                    yield from self._ping()
        """)
        # no kernel anywhere: the cycle must neither hang nor crash
        assert "REP101" not in rule_ids(findings)

    def test_clean_helper_launch_stays_clean(self):
        findings = lint("""
            class C(Chare):
                @entry(prefetch=True, readonly=["a"])
                def go(self):
                    yield from self._launch()

                def _launch(self):
                    yield from self.kernel(flops=1, reads=[self.a],
                                           writes=[])
        """)
        assert rule_ids(findings) == []
