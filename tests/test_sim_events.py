"""Unit tests for the DES event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import AllOf, AnyOf, Event, Timeout


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_starts_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_carries_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.value == 42
        env.run()
        assert ev.processed

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_fail_propagates_to_run(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_defused_failure_is_swallowed(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        env.run()  # does not raise

    def test_callback_after_processing_runs_immediately(self, env):
        ev = env.event()
        ev.succeed("x")
        env.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_callbacks_run_in_registration_order(self, env):
        ev = env.event()
        order = []
        ev.add_callback(lambda e: order.append(1))
        ev.add_callback(lambda e: order.append(2))
        ev.succeed()
        env.run()
        assert order == [1, 2]


class TestTimeout:
    def test_fires_at_delay(self, env):
        t = env.timeout(2.5)
        env.run()
        assert t.processed
        assert env.now == 2.5

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_carries_value(self, env):
        t = env.timeout(1.0, value="done")
        env.run()
        assert t.value == "done"

    def test_zero_delay_fires_now(self, env):
        t = env.timeout(0.0)
        env.run()
        assert t.processed
        assert env.now == 0.0


class TestAllOf:
    def test_waits_for_all(self, env):
        a, b = env.timeout(1.0), env.timeout(3.0)
        both = env.all_of([a, b])
        env.run(until=both)
        assert env.now == 3.0

    def test_value_maps_children(self, env):
        a = env.timeout(1.0, value="a")
        b = env.timeout(2.0, value="b")
        both = env.all_of([a, b])
        result = env.run(until=both)
        assert result[a] == "a"
        assert result[b] == "b"

    def test_empty_fires_immediately(self, env):
        ev = env.all_of([])
        assert ev.triggered

    def test_child_failure_fails_condition(self, env):
        good = env.timeout(5.0)
        bad = env.event()
        bad.fail(RuntimeError("child"))
        cond = env.all_of([good, bad])
        with pytest.raises(RuntimeError, match="child"):
            env.run(until=cond)

    def test_mixed_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            env.all_of([env.timeout(1), other.timeout(1)])


class TestAnyOf:
    def test_fires_on_first(self, env):
        a, b = env.timeout(1.0), env.timeout(3.0)
        first = env.any_of([a, b])
        env.run(until=first)
        assert env.now == 1.0

    def test_only_fires_once(self, env):
        a, b = env.timeout(1.0), env.timeout(3.0)
        first = env.any_of([a, b])
        env.run()
        assert first.processed
        assert env.now == 3.0
