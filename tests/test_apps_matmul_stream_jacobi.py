"""Tests for MatMul, StreamApp and Jacobi2D applications."""

import numpy as np
import pytest

from repro.apps.jacobi2d import Jacobi2D, JacobiConfig
from repro.apps.matmul import MatMul, MatMulConfig
from repro.apps.stream_app import StreamApp, StreamAppConfig
from repro.core.api import OOCRuntimeBuilder
from repro.errors import ConfigError
from repro.mem.block import BlockState
from repro.units import GiB, MiB

HBM = 256 * MiB
DDR = 2 * GiB


def builder(strategy, cores=8, **kwargs):
    return OOCRuntimeBuilder(strategy, cores=cores, mcdram_capacity=HBM,
                             ddr_capacity=DDR, trace=False, **kwargs)


class TestMatMulConfig:
    def test_geometry(self):
        cfg = MatMulConfig(n=1024, grid=8)
        assert cfg.block_dim == 128
        assert cfg.panel_bytes == 128 * 1024 * 8
        assert cfg.c_block_bytes == 128 * 128 * 8
        assert cfg.total_working_set == 3 * 1024 * 1024 * 8

    def test_for_working_set_matches_target(self):
        cfg = MatMulConfig.for_working_set(int(1.5 * GiB), block_dim=96)
        assert cfg.total_working_set == pytest.approx(1.5 * GiB, rel=0.1)
        assert cfg.block_dim == 96

    def test_flops_formula(self):
        cfg = MatMulConfig(n=512, grid=4)
        assert cfg.flops_per_task == 2 * 128 * 128 * 512

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            MatMulConfig(n=100, grid=7)  # not divisible
        with pytest.raises(ConfigError):
            MatMulConfig(n=0, grid=1)
        with pytest.raises(ConfigError):
            MatMulConfig(mkl_pack_factor=0)


class TestMatMulRuns:
    def run_matmul(self, strategy, n=768, grid=8, **kwargs):
        built = builder(strategy, **kwargs).build()
        cfg = MatMulConfig(n=n, grid=grid)
        app = MatMul(built, cfg)
        return built, app, app.run()

    def test_completes_all_tasks(self):
        _, app, result = self.run_matmul("multi-io")
        assert result.tasks_completed == 64
        assert result.total_time > 0

    def test_panels_shared_across_chares(self):
        built, app, _ = self.run_matmul("naive")
        # 8 A panels + 8 B panels + 64 C blocks
        assert len(built.machine.registry) == 8 + 8 + 64
        row0 = [app.array[(0, j)] for j in range(8)]
        assert all(c.A is row0[0].A for c in row0)

    def test_readonly_panels_survive_via_refcount_reuse(self):
        built, app, _ = self.run_matmul("multi-io")
        # every panel was fetched far fewer times than its use count
        for i in range(8):
            panel = app.panels.panel("A", i)
            fetches = panel.bytes_moved / panel.nbytes
            assert fetches <= 4  # used by 8 tasks

    def test_prefetch_beats_ddr_only(self):
        # needs enough concurrency that DDR4 bandwidth binds
        _, _, pref = self.run_matmul("multi-io", n=1536, grid=16, cores=32)
        _, _, ddr = self.run_matmul("ddr-only", n=1536, grid=16, cores=32)
        assert pref.total_time < ddr.total_time

    def test_mkl_scratch_pinned_to_ddr(self):
        built, _, _ = self.run_matmul("hbm-only", n=256, grid=4,
                                      cores=4)
        # even all-HBM placement produces some DDR traffic (MKL scratch)
        assert built.machine.ddr.bytes_read > 0


class TestStreamApp:
    def test_measures_bandwidth(self):
        built = builder("hbm-only", cores=8).build()
        cfg = StreamAppConfig(chares=8, array_bytes=4 * MiB, repeats=2)
        app = StreamApp(built, cfg)
        result = app.run()
        assert result.bandwidth > 0
        assert result.bytes_touched == 3 * 4 * MiB * 8

    def test_prefetch_strategy_fetches_before_kernel(self):
        built = builder("multi-io", cores=4).build()
        cfg = StreamAppConfig(chares=4, array_bytes=4 * MiB, repeats=1)
        app = StreamApp(built, cfg)
        app.run()
        assert built.strategy.fetches > 0

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ConfigError):
            StreamAppConfig(kernel="sort")


class TestJacobi:
    def test_converges_functionally(self):
        built = builder("hbm-only", cores=4).build()
        cfg = JacobiConfig(chare_grid=4, block_bytes=4 * MiB,
                           tolerance=1e-2, max_iterations=200)
        app = Jacobi2D(built, cfg, seed=3)
        result = app.run()
        assert result.converged
        assert result.final_residual < 1e-2
        # residuals decrease overall
        assert result.residual_history[-1] < result.residual_history[0]

    def test_respects_iteration_cap(self):
        built = builder("hbm-only", cores=4).build()
        cfg = JacobiConfig(chare_grid=4, block_bytes=4 * MiB,
                           tolerance=1e-12, max_iterations=3)
        result = Jacobi2D(built, cfg).run()
        assert not result.converged
        assert result.iterations_run == 3

    def test_runs_out_of_core(self):
        built = builder("multi-io", cores=4).build()
        cfg = JacobiConfig(chare_grid=4, block_bytes=32 * MiB,
                           tolerance=1e-2, max_iterations=20)
        result = Jacobi2D(built, cfg).run()
        assert built.strategy.fetches > 0
        assert result.iterations_run > 0

    def test_same_seed_same_residuals(self):
        def run():
            built = builder("hbm-only", cores=4).build()
            cfg = JacobiConfig(chare_grid=4, block_bytes=MiB,
                               tolerance=1e-3, max_iterations=30)
            return Jacobi2D(built, cfg, seed=11).run().residual_history

        assert run() == run()
