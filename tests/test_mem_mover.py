"""Unit tests for the DataMover (numa_alloc_onnode + memcpy + numa_free)."""

import pytest

from repro.errors import BlockStateError, CapacityError
from repro.machine.knl import build_knl
from repro.mem.block import BlockState, DataBlock
from repro.mem.allocator import FreeListAllocator
from repro.sim.environment import Environment
from repro.units import GiB, MiB


@pytest.fixture
def node():
    # Small capacities keep the numbers easy to reason about.
    return build_knl(Environment(), mcdram_capacity=GiB, ddr_capacity=4 * GiB)


def place(node, name, nbytes, device):
    block = DataBlock(name, nbytes)
    node.registry.register(block)
    node.topology.place_block(block, device)
    return block


class TestMove:
    def test_move_updates_residency(self, node):
        block = place(node, "b", 64 * MiB, node.ddr)
        proc = node.env.process(node.mover.move(block, node.hbm))
        result = node.env.run(until=proc)
        assert block.state is BlockState.INHBM
        assert block.device is node.hbm
        assert node.ddr.used == 0
        assert node.hbm.used == 64 * MiB
        assert result.nbytes == 64 * MiB

    def test_move_time_has_three_parts(self, node):
        block = place(node, "b", 64 * MiB, node.ddr)
        proc = node.env.process(node.mover.move(block, node.hbm))
        result = node.env.run(until=proc)
        assert result.alloc_time > 0
        assert result.copy_time > 0
        assert result.free_time > 0
        assert result.total_time == pytest.approx(
            result.alloc_time + result.copy_time + result.free_time)

    def test_lone_copy_runs_at_thread_cap(self, node):
        block = place(node, "b", 50 * MiB, node.ddr)
        proc = node.env.process(node.mover.move(block, node.hbm))
        result = node.env.run(until=proc)
        cap = node.mover.per_thread_copy_bw
        assert result.effective_bandwidth == pytest.approx(cap, rel=1e-2)

    def test_hbm_to_ddr_slower_than_ddr_to_hbm(self, node):
        """Figure 7: memcpy cost slightly higher HBM->DDR (DDR write port
        is the weakest link).  Visible once many movers saturate ports."""
        env = node.env
        n = 64
        blocks_in = [place(node, f"in{i}", 8 * MiB, node.ddr)
                     for i in range(n)]
        start = env.now
        procs = [env.process(node.mover.move(b, node.hbm)) for b in blocks_in]
        env.run(until=env.all_of(procs))
        t_d2h = env.now - start
        start = env.now
        procs = [env.process(node.mover.move(b, node.ddr)) for b in blocks_in]
        env.run(until=env.all_of(procs))
        t_h2d = env.now - start
        assert t_h2d > t_d2h

    def test_move_to_full_device_raises_before_time_passes(self, node):
        filler = place(node, "filler", GiB, node.hbm)
        block = place(node, "b", 64 * MiB, node.ddr)
        with pytest.raises(CapacityError):
            # generator raises at first advance
            gen = node.mover.move(block, node.hbm)
            next(gen)
        assert block.state is BlockState.INDDR

    def test_move_to_same_device_rejected(self, node):
        block = place(node, "b", MiB, node.ddr)
        with pytest.raises(BlockStateError):
            next(node.mover.move(block, node.ddr))

    def test_unplaced_block_rejected(self, node):
        block = DataBlock("ghost", MiB)
        with pytest.raises(BlockStateError):
            next(node.mover.move(block, node.hbm))

    def test_concurrent_move_of_same_block_rejected(self, node):
        block = place(node, "b", 64 * MiB, node.ddr)
        node.env.process(node.mover.move(block, node.hbm))
        node.env.run(until=1e-5)  # let the first move start
        with pytest.raises(BlockStateError):
            next(node.mover.move(block, node.hbm))

    def test_counters_accumulate(self, node):
        b1 = place(node, "b1", MiB, node.ddr)
        b2 = place(node, "b2", MiB, node.ddr)
        env = node.env
        procs = [env.process(node.mover.move(b, node.hbm)) for b in (b1, b2)]
        env.run(until=env.all_of(procs))
        assert node.mover.moves_completed == 2
        assert node.mover.bytes_moved == 2 * MiB

    def test_fragmentation_failure_restores_block(self):
        """Free-list ablation: mid-move CapacityError must not corrupt."""
        env = Environment()
        node = build_knl(env, mcdram_capacity=3 * MiB, ddr_capacity=GiB,
                         allocator_cls=FreeListAllocator)
        a = place(node, "a", MiB, node.hbm)
        b = place(node, "b", MiB, node.hbm)
        c = place(node, "c", MiB, node.hbm)
        node.topology.release_block(a)
        node.topology.release_block(c)
        # 2 MiB free but fragmented; a 2 MiB fetch fails at allocate time
        big = place(node, "big", 2 * MiB - 4096, node.ddr)
        proc = env.process(node.mover.move(big, node.hbm))
        with pytest.raises(CapacityError):
            env.run(until=proc)
        assert big.state is BlockState.INDDR
        assert big.device is node.ddr


class TestMigratePages:
    def test_rounds_to_pages(self, node):
        block = place(node, "b", 5000, node.ddr)  # 2 pages
        proc = node.env.process(node.mover.move_migrate_pages(block, node.hbm))
        result = node.env.run(until=proc)
        assert result.nbytes == 8192
        assert node.hbm.used == 8192

    def test_slower_than_memcpy_for_many_pages(self, node):
        """The paper cites [11]: memcpy is the more scalable mechanism."""
        env = node.env
        b1 = place(node, "m1", 64 * MiB, node.ddr)
        b2 = place(node, "m2", 64 * MiB, node.ddr)
        t0 = env.now
        env.run(until=env.process(node.mover.move(b1, node.hbm)))
        t_memcpy = env.now - t0
        t0 = env.now
        env.run(until=env.process(node.mover.move_migrate_pages(b2, node.hbm)))
        t_migrate = env.now - t0
        assert t_migrate > t_memcpy

    def test_concurrent_migrate_of_same_block_rejected(self, node):
        """Parity with `move`: a block mid-migration cannot migrate again."""
        block = place(node, "b", 64 * MiB, node.ddr)
        node.env.process(node.mover.move_migrate_pages(block, node.hbm))
        node.env.run(until=1e-5)  # let the first migration start
        with pytest.raises(BlockStateError):
            next(node.mover.move_migrate_pages(block, node.hbm))

    def test_fragmentation_failure_restores_block(self):
        """Regression: a fragmentation CapacityError after begin_move must
        roll the block back instead of leaving it stuck MOVING."""
        env = Environment()
        node = build_knl(env, mcdram_capacity=3 * MiB, ddr_capacity=GiB,
                         allocator_cls=FreeListAllocator)
        a = place(node, "a", MiB, node.hbm)
        b = place(node, "b", MiB, node.hbm)
        c = place(node, "c", MiB, node.hbm)
        node.topology.release_block(a)
        node.topology.release_block(c)
        # 2 MiB free but fragmented; the page-padded 2 MiB allocation fails
        big = place(node, "big", 2 * MiB - 4096, node.ddr)
        proc = env.process(node.mover.move_migrate_pages(big, node.hbm))
        with pytest.raises(CapacityError):
            env.run(until=proc)
        assert big.state is BlockState.INDDR
        assert big.device is node.ddr
        assert not big.moving
        # the block is healthy: once the fragmentation clears (freeing the
        # middle block coalesces the free list) the migration succeeds
        node.topology.release_block(b)
        proc = env.process(node.mover.move_migrate_pages(big, node.hbm))
        env.run(until=proc)
        assert big.state is BlockState.INHBM
