"""Unit tests for the typed instruments (Counter/Gauge/Histogram/Timer)."""

import math

import pytest

from repro.metrics.instruments import (DEFAULT_LATENCY_BOUNDS, Counter,
                                       Gauge, Histogram, PolledGauge, Timer)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("repro_moves_total")
        c.inc()
        c.inc(41.0)
        assert c.value == 42.0

    def test_rejects_negative_increment(self):
        c = Counter("repro_moves_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_series_includes_sorted_labels(self):
        c = Counter("repro_moves_total", (("dst", "ddr4"), ("src", "mcdram")))
        assert c.series == 'repro_moves_total{dst="ddr4",src="mcdram"}'

    def test_unlabelled_series_is_bare_name(self):
        assert Counter("repro_moves_total").series == "repro_moves_total"


class TestGauge:
    def test_watermarks(self):
        g = Gauge("repro_moves_inflight")
        g.set(3)
        g.set(-1)
        g.set(1)
        assert g.value == 1
        assert g.high_water == 3
        assert g.low_water == -1

    def test_inc_dec(self):
        g = Gauge("repro_moves_inflight")
        g.inc()
        g.inc(2)
        g.dec()
        assert g.value == 2.0

    def test_time_weighted_mean(self):
        clock = FakeClock()
        g = Gauge("depth", clock=clock)
        g.set(10)          # value 10 over [0, 4)
        clock.now = 4.0
        g.set(0)           # value 0 over [4, 10)
        clock.now = 10.0
        assert g.time_weighted_mean() == pytest.approx(4.0)

    def test_mean_with_zero_span_is_current_value(self):
        g = Gauge("depth")
        g.set(7)
        assert g.time_weighted_mean() == 7


class TestPolledGauge:
    def test_sample_reads_the_callable(self):
        backing = [3]
        g = PolledGauge("depth", lambda: backing[0])
        assert g.value == 0.0
        assert g.sample() == 3.0
        backing[0] = 9
        g.sample()
        assert g.value == 9.0
        assert g.high_water == 9.0


class TestHistogram:
    def test_default_boundaries_span_latency_range(self):
        h = Histogram("lat")
        assert h.boundaries == DEFAULT_LATENCY_BOUNDS
        assert len(h.bucket_counts) == len(DEFAULT_LATENCY_BOUNDS) + 1

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("lat", boundaries=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", boundaries=(1.0, 1.0))

    def test_counts_sum_min_max(self):
        h = Histogram("lat", boundaries=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 9.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(14.0)
        assert h.min == 0.5
        assert h.max == 9.0
        assert h.bucket_counts == [1, 1, 1, 1]

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("lat", boundaries=(1.0, 2.0))
        for _ in range(10):
            h.observe(1.5)        # all in the (1, 2] bucket
        # p50 target is the middle of a 10-observation bucket
        assert 1.0 < h.quantile(0.5) <= 2.0

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram("lat", boundaries=(1.0,))
        h.observe(50.0)
        assert h.p50 == 50.0
        assert h.p99 == 50.0

    def test_empty_histogram_is_nan(self):
        h = Histogram("lat")
        assert math.isnan(h.p50)
        assert math.isnan(h.mean)

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)


class TestTimer:
    def test_start_stop_records_span(self):
        clock = FakeClock()
        t = Timer("span", clock=clock)
        mark = t.start()
        clock.now = 0.25
        assert t.stop(mark) == pytest.approx(0.25)
        assert t.histogram.count == 1
        assert t.histogram.sum == pytest.approx(0.25)

    def test_overlapping_spans(self):
        clock = FakeClock()
        t = Timer("span", clock=clock)
        a = t.start()
        clock.now = 1.0
        b = t.start()
        clock.now = 3.0
        t.stop(a)
        t.stop(b)
        assert t.histogram.count == 2
        assert t.histogram.sum == pytest.approx(5.0)
