"""Three-solver equivalence oracle + the sim-core numeric bugfix tests.

The ``"vectorized"`` solver must be *bit-identical* to ``"incremental"``
(same scheduling, same kernel arithmetic, different execution engine) and
timeline-equivalent to the ``"full"`` oracle.  Alongside, regression
tests for the three PR bugfixes, each of which fails on the pre-fix code:

* sub-epsilon remainders force-complete at the wake instant instead of
  being rescheduled (no late ``finished_at``, no zero-progress loop);
* rate-zero flows park with no wake (no inf/nan ETA), and cancelling a
  flow that completes at the exact cancel instant is a no-op instead of
  failing an already-succeeded event;
* cancelled event-queue entries are compacted instead of accumulating,
  and the live-entry count stays conserved.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.fluid import (_EPSILON_BYTES, _VEC_MIN_CELLS, SOLVERS,
                             FluidNetwork, default_solver)

ALL_SOLVERS = list(SOLVERS)


def _run_scenario(solver: str, scenario) -> dict[int, float]:
    """Run a scenario under one solver; map flow fid -> finished_at."""
    env = Environment()
    net = FluidNetwork(env, solver=solver)
    flows = scenario(env, net)
    env.run()
    return {f.fid: f.finished_at for f in flows}


# -- scenario builders: each returns the flows it started ------------------

def _waves_private_lanes(env, net):
    """Staggered waves over private link pairs (the contention shape)."""
    lanes = [(net.add_link(f"r{i}", 90e9 + i * 1e9),
              net.add_link(f"w{i}", 70e9 + i * 2e9)) for i in range(6)]
    flows = []

    def driver():
        for wave in range(3):
            for i, (r, w) in enumerate(lanes):
                flows.append(net.start_flow(
                    32e6 * (1 + (wave * 6 + i) % 5),
                    [r, w], weight=1.0 + (i % 3), max_rate=11e9))
            yield env.timeout(1e-3)

    env.process(driver())
    return flows


def _shared_bottleneck_capped(env, net):
    """Many flows over one shared pair, mixed caps and weights."""
    a = net.add_link("shared.a", 50e9)
    b = net.add_link("shared.b", 64e9)
    side = net.add_link("side", 10e9)
    flows = []
    for k in range(24):
        links = [a, b] if k % 3 else [a, b, side]
        flows.append(net.start_flow(
            16e6 * (1 + k % 7), links,
            weight=0.5 + (k % 4) * 0.75,
            max_rate=math.inf if k % 2 else 2e9 + k * 1e8))
    return flows


def _arrivals_and_cancels(env, net):
    """Flows arriving over time, some cancelled mid-flight."""
    l1 = net.add_link("x", 40e9)
    l2 = net.add_link("y", 40e9)
    flows = [net.start_flow(64e6 * (1 + k), [l1] if k % 2 else [l1, l2])
             for k in range(8)]
    doomed = net.start_flow(1e9, [l1, l2], weight=2.0)

    def canceller():
        yield env.timeout(2e-3)
        net.cancel_flow(doomed)
        flows.append(net.start_flow(48e6, [l2], max_rate=5e9))

    env.process(canceller())
    return flows


SCENARIOS = [_waves_private_lanes, _shared_bottleneck_capped,
             _arrivals_and_cancels]


class TestSolverEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS,
                             ids=lambda s: s.__name__.lstrip("_"))
    def test_vectorized_bitwise_matches_incremental(self, scenario):
        inc = _run_scenario("incremental", scenario)
        vec = _run_scenario("vectorized", scenario)
        # exact float equality, not approx: the numpy kernel replicates
        # the scalar kernel's operation order
        assert vec == inc

    @pytest.mark.parametrize("scenario", SCENARIOS,
                             ids=lambda s: s.__name__.lstrip("_"))
    @pytest.mark.parametrize("solver", ["incremental", "vectorized"])
    def test_all_solvers_match_full_oracle(self, scenario, solver):
        oracle = _run_scenario("full", scenario)
        got = _run_scenario(solver, scenario)
        assert got.keys() == oracle.keys()
        for fid, finished_at in got.items():
            assert finished_at == pytest.approx(oracle[fid], rel=1e-9), fid

    def test_vectorized_path_actually_engages(self):
        """The big scenarios must cross the numpy-kernel size threshold."""
        env = Environment()
        net = FluidNetwork(env, solver="vectorized")
        flows = _shared_bottleneck_capped(env, net)
        links = {link for f in flows for link in f.links}
        assert len(flows) * len(links) >= _VEC_MIN_CELLS
        assert net._vectorized

    def test_default_solver_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        assert default_solver() == "incremental"
        monkeypatch.setenv("REPRO_SOLVER", "vectorized")
        assert default_solver() == "vectorized"
        assert FluidNetwork(Environment()).solver == "vectorized"
        monkeypatch.setenv("REPRO_SOLVER", "bogus")
        with pytest.raises(SimulationError, match="REPRO_SOLVER"):
            default_solver()


class TestEpsilonForceComplete:
    """Bugfix 1: sub-epsilon remainders complete at the wake, on time."""

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_sub_epsilon_remainder_completes_now(self, solver):
        env = Environment()
        net = FluidNetwork(env, solver=solver)
        link = net.add_link("l", 100.0)
        flow = net.start_flow(1000.0, [link])
        env.run(3.0)
        assert not flow.finished
        # Emulate float-drift leaving a sub-epsilon remainder, then re-arm:
        # pre-fix this schedules a wake for the residue and stamps
        # finished_at *later* than the true completion instant.
        flow.remaining = _EPSILON_BYTES / 2
        net._schedule_wake()
        assert flow.finished
        assert flow.finished_at == 3.0
        assert flow.done.triggered and flow.done.ok
        env.run()

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_sub_ulp_eta_does_not_spin(self, solver):
        """An ETA below one clock ulp force-completes instead of looping."""
        env = Environment()
        net = FluidNetwork(env, solver=solver)
        link = net.add_link("l", 1e16)
        env.run(1.0)
        # eta = 2e-3 / 1e16 = 2e-19; 1.0 + 2e-19 == 1.0 in float, so a
        # wake would fire at the same instant with dt == 0 forever
        flow = net.start_flow(2e-3, [link], max_rate=1e16)
        for _ in range(50):
            if flow.finished:
                break
            env.step()
        assert flow.finished
        assert flow.finished_at == 1.0


class TestZeroRateAndCancel:
    """Bugfix 2: rate-zero parking and cancel idempotence."""

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_zero_rate_flow_parks_without_wake(self, solver):
        env = Environment()
        net = FluidNetwork(env, solver=solver)
        link = net.add_link("l", 100.0)
        flow = net.start_flow(1e6, [link], max_rate=0.0)
        env.run()  # must terminate: no inf/nan wake was scheduled
        assert not flow.finished
        assert flow.rate == 0.0
        assert net._wake_entry is None
        # the parked flow is still live and picked up by the next re-solve
        assert flow in net.active_flows
        net.cancel_flow(flow)
        env.run()
        assert flow.finished

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_cancel_at_exact_completion_instant_is_noop(self, solver):
        env = Environment()
        net = FluidNetwork(env, solver=solver)
        link = net.add_link("l", 100.0)
        flow = net.start_flow(1000.0, [link])  # completes at t=10

        def canceller():
            # lands at t=10 *before* the fluid wake: cancel_flow's own
            # advance completes the flow; pre-fix the cancel then failed
            # the already-succeeded done event
            yield env.timeout(10.0)
            net.cancel_flow(flow)

        env.process(canceller())
        env.run()
        assert flow.finished
        assert flow.finished_at == 10.0
        assert flow.done.ok  # completed, not cancelled

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_cancel_after_finish_is_noop(self, solver):
        env = Environment()
        net = FluidNetwork(env, solver=solver)
        link = net.add_link("l", 100.0)
        flow = net.start_flow(500.0, [link])
        env.run()
        assert flow.finished
        net.cancel_flow(flow)  # idempotent no-op
        net.cancel_flow(flow)
        assert flow.done.ok

    def test_bad_flow_parameters_rejected(self):
        env = Environment()
        net = FluidNetwork(env)
        link = net.add_link("l", 100.0)
        for kwargs in ({"nbytes": -1.0}, {"nbytes": math.nan},
                       {"weight": 0.0}, {"weight": math.nan},
                       {"max_rate": -1.0}, {"max_rate": math.nan}):
            params = {"nbytes": 1e6, "weight": 1.0, "max_rate": math.inf,
                      **kwargs}
            with pytest.raises(SimulationError):
                net.start_flow(params["nbytes"], [link],
                               weight=params["weight"],
                               max_rate=params["max_rate"])


class TestTombstoneCompaction:
    """Bugfix 3: dead entries are bounded; live-entry count is conserved."""

    def test_churned_cancellations_stay_bounded(self):
        env = Environment()
        keep = [env.schedule(Event(env, f"keep{i}"), delay=100.0 + i)
                for i in range(10)]
        for i in range(5000):
            entry = env.schedule(Event(env, "churn"), delay=50.0 + i * 1e-3)
            assert env.cancel(entry)
        assert env._live == 10
        assert env.live_entry_count() == 10
        # tombstones must have been compacted away, not accumulated: 5000
        # dead entries against 10 live ones must not survive
        assert env.stored_entry_count() <= 10 + 2 * 64 + 2
        assert len(keep) == 10
        env.run()
        assert env._live == 0
        assert env.live_entry_count() == 0

    def test_interleaved_cancel_conserves_live_count(self):
        env = Environment()
        entries = [env.schedule(Event(env, f"e{i}"), delay=float(i + 1))
                   for i in range(200)]
        for i, entry in enumerate(entries):
            if i % 3:
                assert env.cancel(entry)
        survivors = sum(1 for i in range(200) if not i % 3)
        assert env._live == survivors
        assert env.live_entry_count() == survivors
        env.run()
        assert env.now == pytest.approx(
            max(i + 1 for i in range(200) if not i % 3))
        assert env.live_entry_count() == env._live == 0

    def test_cancel_is_idempotent(self):
        env = Environment()
        entry = env.schedule(Event(env, "once"), delay=1.0)
        assert env.cancel(entry)
        assert not env.cancel(entry)
        assert env._live == 0


class TestFigureByteIdentity:
    """Vectorized and incremental must emit byte-identical figure tables."""

    @staticmethod
    def _table_bytes(plan_fn, monkeypatch, solver: str) -> str:
        from repro.bench.harness import run_plan

        monkeypatch.setenv("REPRO_SOLVER", solver)
        result = run_plan(plan_fn())
        return json.dumps(dataclasses.asdict(result), sort_keys=True)

    def test_fig2_table_identical(self, monkeypatch):
        from repro.bench.experiments import Scale, fig2_plan

        def plan():
            return fig2_plan(Scale.TINY, iterations=2)

        inc = self._table_bytes(plan, monkeypatch, "incremental")
        vec = self._table_bytes(plan, monkeypatch, "vectorized")
        assert vec == inc

    def test_fig8_table_identical(self, monkeypatch):
        from repro.bench.experiments import Scale, fig8_plan

        def plan():
            return fig8_plan(Scale.TINY, iterations=2, reduced_ws_gb=(4,))

        inc = self._table_bytes(plan, monkeypatch, "incremental")
        vec = self._table_bytes(plan, monkeypatch, "vectorized")
        assert vec == inc

    def test_fingerprint_differs_per_solver(self, monkeypatch):
        """The result cache must not mix generations across solvers."""
        from repro.exec.fingerprint import code_fingerprint

        monkeypatch.setenv("REPRO_SOLVER", "incremental")
        inc = code_fingerprint()
        monkeypatch.setenv("REPRO_SOLVER", "vectorized")
        vec = code_fingerprint()
        assert inc != vec
        monkeypatch.setenv("REPRO_SOLVER", "incremental")
        assert code_fingerprint() == inc
