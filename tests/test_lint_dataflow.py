"""Tests for the monotone dataflow engine and loop-nest inference."""

import ast
import random
import textwrap

from repro.lint.cfg import build_cfg
from repro.lint.dataflow import (Liveness, ReachingDefinitions, Sym,
                                 iter_loops, loop_nests, solve)


def func_of(body: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(body))
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)
    return func


class TestReachingDefinitions:
    def test_params_reach_entry_at_line_zero(self):
        func = func_of("""
            def f(a, b):
                return a + b
        """)
        cfg = build_cfg(func)
        facts = solve(cfg, ReachingDefinitions())
        assert {("a", 0), ("b", 0)} <= facts[cfg.entry][0]

    def test_assignment_kills_previous_definition(self):
        func = func_of("""
            def f():
                x = 1
                x = 2
                return x
        """)
        cfg = build_cfg(func)
        facts = solve(cfg, ReachingDefinitions())
        reaching_exit = facts[cfg.exit][0]
        xs = {f for f in reaching_exit if f[0] == "x"}
        assert xs == {("x", 4)}

    def test_branch_merges_both_definitions(self):
        func = func_of("""
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
        """)
        cfg = build_cfg(func)
        facts = solve(cfg, ReachingDefinitions())
        xs = {f for f in facts[cfg.exit][0] if f[0] == "x"}
        assert xs == {("x", 4), ("x", 6)}

    def test_loop_body_definition_reaches_header(self):
        func = func_of("""
            def f(n):
                x = 0
                while n:
                    x = x + 1
                return x
        """)
        cfg = build_cfg(func)
        facts = solve(cfg, ReachingDefinitions())
        header = next(b for b in cfg.blocks
                      if any(isinstance(s, ast.While) for s in b.stmts))
        xs = {f for f in facts[header.index][0] if f[0] == "x"}
        assert xs == {("x", 3), ("x", 5)}


class TestLiveness:
    def test_used_name_is_live_at_entry(self):
        func = func_of("""
            def f():
                return y
        """)
        cfg = build_cfg(func)
        facts = solve(cfg, Liveness())
        # backward analysis: facts_out of the entry block = live before it
        assert "y" in facts[cfg.entry][1]

    def test_dead_store_is_not_live(self):
        func = func_of("""
            def f():
                x = 1
                x = 2
                return x
        """)
        cfg = build_cfg(func)
        facts = solve(cfg, Liveness())
        assert "x" not in facts[cfg.entry][1]

    def test_loop_carried_use_keeps_name_live(self):
        func = func_of("""
            def f(n):
                acc = 0
                for i in range(n):
                    acc = acc + i
                return acc
        """)
        cfg = build_cfg(func)
        facts = solve(cfg, Liveness())
        body = next(b for b in cfg.blocks
                    if any(s.lineno == 5 for s in b.stmts))
        assert "acc" in facts[body.index][0] | facts[body.index][1]


class TestFixpointTermination:
    def test_random_loop_nests_terminate_and_are_deterministic(self):
        """Property: solve() reaches a fixpoint on arbitrary nest shapes.

        Generates random nested loop/if structures (seeded, no external
        generator dependencies) and checks both termination and
        run-to-run determinism of the solution.
        """
        rng = random.Random(20260808)

        def gen_body(depth: int, counter: list) -> list:
            stmts = []
            for _ in range(rng.randint(1, 3)):
                counter[0] += 1
                name = f"v{counter[0] % 7}"
                roll = rng.random()
                if roll < 0.35 and depth < 4:
                    inner = gen_body(depth + 1, counter)
                    stmts.append(
                        f"while {name}:\n" + textwrap.indent(
                            "\n".join(inner) or "pass", "    "))
                elif roll < 0.6 and depth < 4:
                    inner = gen_body(depth + 1, counter)
                    stmts.append(
                        f"for i{counter[0]} in range({name}):\n"
                        + textwrap.indent("\n".join(inner) or "pass",
                                          "    "))
                elif roll < 0.8:
                    stmts.append(f"{name} = v{(counter[0] + 1) % 7}")
                else:
                    inner = gen_body(depth + 1, counter) if depth < 4 \
                        else ["pass"]
                    stmts.append(
                        f"if {name}:\n" + textwrap.indent(
                            "\n".join(inner) or "pass", "    "))
            return stmts

        for trial in range(25):
            body = "\n".join(gen_body(0, [trial * 100])) or "pass"
            src = "def f(v0, v1, v2, v3, v4, v5, v6):\n" + textwrap.indent(
                body, "    ")
            func = ast.parse(src).body[0]
            cfg = build_cfg(func)
            first = solve(cfg, ReachingDefinitions())
            second = solve(cfg, ReachingDefinitions())
            assert first == second  # deterministic fixpoint
            live = solve(cfg, Liveness())
            assert set(live) == {b.index for b in cfg.blocks}


class TestLoopNests:
    def test_range_trip_counts_resolve(self):
        func = func_of("""
            def f():
                for i in range(8):
                    for j in range(2, 6):
                        pass
        """)
        nests = loop_nests(func)
        flat = list(iter_loops(nests))
        assert [loop.trip.value for loop in flat] == [8.0, 4.0]
        assert [loop.depth for loop in flat] == [0, 1]

    def test_while_is_unbounded(self):
        func = func_of("""
            def f(n):
                while n:
                    n -= 1
        """)
        (loop,) = loop_nests(func)
        assert loop.kind == "while"
        assert not loop.bounded
        assert loop.trip is None

    def test_for_over_iterable_is_bounded_unknown(self):
        func = func_of("""
            def f(xs):
                for x in xs:
                    pass
        """)
        (loop,) = loop_nests(func)
        assert loop.bounded
        assert loop.trip is None

    def test_custom_evaluator_resolves_names(self):
        func = func_of("""
            def f():
                for i in range(n_iters):
                    pass
        """)
        env = {"n_iters": Sym("n_iters", 12.0)}

        def evaluate(expr):
            if isinstance(expr, ast.Name):
                return env.get(expr.id)
            if isinstance(expr, ast.Constant):
                return Sym(repr(expr.value), float(expr.value))
            return None

        (loop,) = loop_nests(func, evaluate)
        assert loop.trip == Sym("n_iters", 12.0)

    def test_loops_inside_if_try_with_are_found(self):
        func = func_of("""
            def f(c, xs):
                if c:
                    for x in xs:
                        pass
                try:
                    while c:
                        break
                except ValueError:
                    for y in xs:
                        pass
                with open("f"):
                    for z in range(3):
                        pass
        """)
        kinds = [loop.kind for loop in iter_loops(loop_nests(func))]
        assert kinds == ["for", "while", "for", "for"]
