"""Tests for DataMover result collection and MoveResult metrics."""

import math

import pytest

from repro.machine.knl import build_knl
from repro.mem.block import DataBlock
from repro.mem.mover import MoveResult
from repro.sim.environment import Environment
from repro.units import GiB, MiB


@pytest.fixture
def node():
    return build_knl(Environment(), mcdram_capacity=GiB, ddr_capacity=4 * GiB)


def place(node, name, nbytes, device):
    block = DataBlock(name, nbytes)
    node.registry.register(block)
    node.topology.place_block(block, device)
    return block


class TestMoveResultCollection:
    def test_results_not_kept_by_default(self, node):
        block = place(node, "b", MiB, node.ddr)
        node.env.run(until=node.env.process(node.mover.move(block, node.hbm)))
        assert node.mover.results == []

    def test_results_kept_when_enabled(self, node):
        node.mover.keep_results = True
        block = place(node, "b", MiB, node.ddr)
        result = node.env.run(
            until=node.env.process(node.mover.move(block, node.hbm)))
        assert node.mover.results == [result]
        assert isinstance(result, MoveResult)

    def test_effective_bandwidth_metric(self):
        r = MoveResult(block=None, src="a", dst="b", nbytes=10_000,
                       started_at=0.0, finished_at=2.0,
                       alloc_time=0.5, copy_time=1.0, free_time=0.5)
        assert r.total_time == 2.0
        assert r.effective_bandwidth == 10_000 / 1.0

    def test_zero_copy_time_bandwidth_is_inf(self):
        r = MoveResult(block=None, src="a", dst="b", nbytes=0,
                       started_at=0.0, finished_at=0.0,
                       alloc_time=0.0, copy_time=0.0, free_time=0.0)
        assert math.isinf(r.effective_bandwidth)

    def test_migrate_pages_results_kept(self, node):
        node.mover.keep_results = True
        block = place(node, "b", MiB, node.ddr)
        node.env.run(until=node.env.process(
            node.mover.move_migrate_pages(block, node.hbm)))
        assert len(node.mover.results) == 1
