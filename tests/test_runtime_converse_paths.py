"""Tests for less-travelled converse scheduler paths."""

import pytest

from repro.core.api import OOCRuntimeBuilder
from repro.errors import EntryMethodError
from repro.machine.knl import build_knl
from repro.runtime.chare import Chare
from repro.runtime.converse import STOP
from repro.runtime.entry import entry
from repro.runtime.interception import RetryFetch
from repro.runtime.runtime import CharmRuntime
from repro.sim.environment import Environment
from repro.units import GiB, MiB


class Simple(Chare):
    @entry
    def hello(self, log):
        log.append(self.runtime.env.now)


class TestConverse:
    def test_bad_run_queue_item_raises(self):
        node = build_knl(Environment(), cores=1, mcdram_capacity=GiB,
                         ddr_capacity=2 * GiB)
        rt = CharmRuntime(node)
        rt.pes[0].run_queue.put("garbage")
        with pytest.raises(EntryMethodError):
            rt.env.run()

    def test_stop_sentinel_halts_scheduler(self):
        node = build_knl(Environment(), cores=1, mcdram_capacity=GiB,
                         ddr_capacity=2 * GiB)
        rt = CharmRuntime(node)
        rt.pes[0].run_queue.put(STOP)
        rt.env.run()
        assert rt.pes[0].stopped_at is not None

    def test_retry_without_interceptor_is_noop(self):
        node = build_knl(Environment(), cores=1, mcdram_capacity=GiB,
                         ddr_capacity=2 * GiB)
        rt = CharmRuntime(node)
        rt.pes[0].run_queue.put(RetryFetch())
        rt.env.run()  # must not raise
        assert rt.pes[0].messages_delivered == 0

    def test_messages_after_retry_still_delivered(self):
        built = OOCRuntimeBuilder("no-io", cores=1, mcdram_capacity=GiB,
                                  ddr_capacity=2 * GiB).build()
        rt = built.runtime
        built.manager.finalize_placement()
        arr = rt.create_array(Simple, 1)
        log = []
        rt.pes[0].run_queue.put(RetryFetch())
        arr.send(0, "hello", log)
        red = rt.reducer(1)
        # drive manually: run until the message got delivered
        rt.env.run(until=1.0)
        assert len(log) == 1

    def test_intercepted_flag_prevents_double_interception(self):
        """A ReadyTask's message must not be intercepted again."""
        built = OOCRuntimeBuilder("multi-io", cores=2, mcdram_capacity=GiB,
                                  ddr_capacity=2 * GiB).build()
        rt = built.runtime

        class W(Chare):
            @entry
            def setup(self, barrier):
                self.d = self.declare_block("d", MiB)
                barrier.contribute()

            @entry(prefetch=True, readwrite=["d"])
            def go(self, red):
                yield from self.kernel(flops=1e6, reads=[self.d],
                                       writes=[self.d])
                red.contribute()

        arr = rt.create_array(W, 4)
        barrier = rt.reducer(4)
        arr.broadcast("setup", barrier)
        rt.run_until(barrier.done)
        built.manager.finalize_placement()
        red = rt.reducer(4)
        arr.broadcast("go", red)
        rt.run_until(red.done)
        assert built.manager.tasks_intercepted == 4  # not 8
