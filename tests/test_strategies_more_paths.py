"""Remaining strategy code paths: stop(), retries, edge conditions."""

import pytest

from repro.core.api import OOCRuntimeBuilder
from repro.core.strategies import make_strategy
from repro.errors import ConfigError, SchedulingError
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.units import GiB, MiB

HBM = 128 * MiB
DDR = 1 * GiB


class W(Chare):
    @entry
    def setup(self, nbytes, barrier):
        self.d = self.declare_block("d", nbytes)
        barrier.contribute()

    @entry(prefetch=True, readwrite=["d"])
    def go(self, red):
        yield from self.kernel(flops=1e7, reads=[self.d], writes=[self.d])
        red.contribute()


def run_once(strategy, chares=8, block=8 * MiB, **kwargs):
    built = OOCRuntimeBuilder(strategy, cores=4, mcdram_capacity=HBM,
                              ddr_capacity=DDR, trace=False,
                              **kwargs).build()
    rt = built.runtime
    arr = rt.create_array(W, chares)
    barrier = rt.reducer(chares)
    arr.broadcast("setup", block, barrier)
    rt.run_until(barrier.done)
    built.manager.finalize_placement()
    red = rt.reducer(chares)
    arr.broadcast("go", red)
    rt.run_until(red.done)
    return built


class TestStop:
    def test_single_io_stop_kills_io_thread(self):
        built = run_once("single-io")
        proc = built.strategy.io_process
        assert proc.is_alive
        built.strategy.stop()
        built.env.run()
        assert not proc.is_alive

    def test_multi_io_stop_kills_all(self):
        built = run_once("multi-io")
        built.strategy.stop()
        built.env.run()
        assert all(not p.is_alive for p in built.strategy.io_processes)

    def test_base_stop_is_noop(self):
        built = run_once("naive")
        built.strategy.stop()  # must not raise


class TestDetachedStrategy:
    def test_unattached_strategy_rejects_use(self):
        strategy = make_strategy("multi-io")
        with pytest.raises(SchedulingError):
            strategy._mgr()

    def test_prefetch_ahead_validation(self):
        with pytest.raises(ConfigError):
            make_strategy("multi-io", prefetch_ahead=0)

    def test_prefetch_ahead_bounds_run_queue_depth(self):
        built = run_once("multi-io",
                         strategy_kwargs={"prefetch_ahead": 1})
        assert built.manager.tasks_completed == 8


class TestStrategyCounters:
    def test_fetch_evict_byte_totals_consistent(self):
        built = run_once("multi-io", chares=16)
        built.env.run()  # drain in-flight evictions
        strat = built.strategy
        assert strat.bytes_fetched % (8 * MiB) == 0
        assert strat.fetches == strat.bytes_fetched // (8 * MiB)

    def test_no_io_parked_counter(self):
        built = run_once("no-io", chares=32)
        # 32 x 8 MiB = 256 MiB against a 128 MiB HBM: some tasks must park
        assert built.strategy.parked_tasks > 0

    def test_single_io_scan_passes_counted(self):
        built = run_once("single-io")
        assert built.strategy.scan_passes > 0
