"""Strategy lifecycle guards: zero-PE validation, idempotent teardown,
and the epoch-memoized capacity caches."""

from types import SimpleNamespace

import pytest

from repro.core.api import OOCRuntimeBuilder
from repro.core.strategies import make_strategy
from repro.errors import ConfigError
from repro.mem.block import BlockState
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.sim.environment import Environment
from repro.units import GiB, MiB

HBM = 128 * MiB
DDR = 1 * GiB


class W(Chare):
    @entry
    def setup(self, nbytes, barrier):
        self.d = self.declare_block("d", nbytes)
        barrier.contribute()

    @entry(prefetch=True, readwrite=["d"])
    def go(self, red):
        yield from self.kernel(flops=1e7, reads=[self.d], writes=[self.d])
        red.contribute()


def run_once(strategy, chares=8, block=8 * MiB, **kwargs):
    built = OOCRuntimeBuilder(strategy, cores=4, mcdram_capacity=HBM,
                              ddr_capacity=DDR, trace=False,
                              **kwargs).build()
    rt = built.runtime
    arr = rt.create_array(W, chares)
    barrier = rt.reducer(chares)
    arr.broadcast("setup", block, barrier)
    rt.run_until(barrier.done)
    built.manager.finalize_placement()
    red = rt.reducer(chares)
    arr.broadcast("go", red)
    rt.run_until(red.done)
    return built


def _zero_pe_manager():
    return SimpleNamespace(env=Environment(),
                           runtime=SimpleNamespace(pes=[]))


class TestZeroPEValidation:
    """`% n` round-robin scans must be unreachable with zero PEs."""

    @pytest.mark.parametrize("name", ["single-io", "multi-io"])
    def test_io_strategies_reject_zero_pes_at_setup(self, name):
        strategy = make_strategy(name)
        with pytest.raises(ConfigError, match="at least one PE"):
            strategy.attach(_zero_pe_manager())

    def test_error_is_raised_before_io_threads_spawn(self):
        strategy = make_strategy("multi-io")
        with pytest.raises(ConfigError):
            strategy.attach(_zero_pe_manager())
        assert strategy.io_processes == []


class TestIdempotentStop:
    """stop() after a completed workload, twice, must be a no-op."""

    def test_multi_io_double_stop(self):
        built = run_once("multi-io")
        strategy = built.strategy
        assert all(p.is_alive for p in strategy.io_processes)
        strategy.stop()
        built.env.run()
        assert all(not p.is_alive for p in strategy.io_processes)
        # second stop: every process already terminated; must not raise
        # and must not schedule anything new
        strategy.stop()
        assert built.env._live == 0
        built.env.run()

    def test_single_io_double_stop(self):
        built = run_once("single-io")
        strategy = built.strategy
        strategy.stop()
        built.env.run()
        assert not strategy.io_process.is_alive
        strategy.stop()
        assert built.env._live == 0

    def test_stop_before_setup_is_noop(self):
        make_strategy("multi-io").stop()
        make_strategy("single-io").stop()


# ---------------------------------------------------------------------------
# Epoch-memoized caches (_wm_seen_epoch / _freeable_cache)
# ---------------------------------------------------------------------------

def _block(nbytes, state, *, in_use=False, pinned=False):
    return SimpleNamespace(nbytes=nbytes, state=state, in_use=in_use,
                           pinned=pinned,
                           in_hbm=state is BlockState.INHBM)


class _CountingEviction:
    def __init__(self):
        self.scans = 0

    def make_space_victims(self, registry, needed, include_demanded=False):
        self.scans += 1
        return []


def _capacity_manager(*, uncommitted, budget=100 * MiB, registry=(),
                      wait_blocks=()):
    tasks = [SimpleNamespace(blocks=[b]) for b in wait_blocks]
    return SimpleNamespace(
        env=Environment(),
        tracker=SimpleNamespace(budget=budget, uncommitted=uncommitted,
                                can_fit=lambda n: False),
        runtime=SimpleNamespace(
            pes=[SimpleNamespace(wait_queue=tasks)]),
        registry=list(registry),
        eviction=_CountingEviction(),
        change_epoch=0,
    )


def _drain(gen):
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


class TestWatermarkMemoization:
    def _strategy(self, mgr):
        strategy = make_strategy("multi-io")
        strategy.manager = mgr  # bypass setup: exercise the cache directly
        return strategy

    def test_fruitless_scan_memoized_within_epoch(self):
        missing = _block(MiB, BlockState.INDDR)
        mgr = _capacity_manager(uncommitted=0, wait_blocks=[missing])
        strategy = self._strategy(mgr)
        assert _drain(strategy.maintain_watermarks("io0")) is False
        assert mgr.eviction.scans == 1
        assert strategy._wm_seen_epoch == mgr.change_epoch
        # same epoch: no rescan
        assert _drain(strategy.maintain_watermarks("io0")) is False
        assert mgr.eviction.scans == 1

    def test_epoch_bump_invalidates_watermark_memo(self):
        missing = _block(MiB, BlockState.INDDR)
        mgr = _capacity_manager(uncommitted=0, wait_blocks=[missing])
        strategy = self._strategy(mgr)
        _drain(strategy.maintain_watermarks("io0"))
        mgr.change_epoch += 1  # a task completed / a block moved
        _drain(strategy.maintain_watermarks("io0"))
        assert mgr.eviction.scans == 2  # rescanned, not stale


class TestFreeableCacheInvalidation:
    def _strategy(self, mgr):
        strategy = make_strategy("multi-io")
        strategy.manager = mgr
        return strategy

    def test_freeable_scan_cached_within_epoch(self):
        resident = _block(64 * MiB, BlockState.INHBM)
        need = _block(32 * MiB, BlockState.INDDR)
        mgr = _capacity_manager(uncommitted=0, registry=[resident])
        strategy = self._strategy(mgr)
        task = SimpleNamespace(blocks=[need])
        assert strategy.can_fetch_task(task) is True
        assert strategy._freeable_cache == (0, 64 * MiB)
        # registry iteration is O(n); within one epoch the probe reuses the
        # cache (replace the registry with a trap to prove it)
        mgr.registry = None
        assert strategy.can_fetch_task(task) is True

    def test_epoch_bump_recomputes_freeable_bytes(self):
        """A block becoming busy must be seen at the next epoch — the
        cache may never return a stale 'yes there is space'."""
        resident = _block(64 * MiB, BlockState.INHBM)
        need = _block(32 * MiB, BlockState.INDDR)
        mgr = _capacity_manager(uncommitted=0, registry=[resident])
        strategy = self._strategy(mgr)
        task = SimpleNamespace(blocks=[need])
        assert strategy.can_fetch_task(task) is True
        # the resident block gets acquired by a running task; the manager
        # bumps change_epoch for exactly this kind of transition
        resident.in_use = True
        mgr.change_epoch += 1
        assert strategy.can_fetch_task(task) is False
        assert strategy._freeable_cache == (1, 0)

    def test_epoch_bump_sees_newly_freeable_space(self):
        resident = _block(64 * MiB, BlockState.INHBM, in_use=True)
        need = _block(32 * MiB, BlockState.INDDR)
        mgr = _capacity_manager(uncommitted=0, registry=[resident])
        strategy = self._strategy(mgr)
        task = SimpleNamespace(blocks=[need])
        assert strategy.can_fetch_task(task) is False
        resident.in_use = False  # its task finished
        mgr.change_epoch += 1
        assert strategy.can_fetch_task(task) is True

    def test_real_runtime_bumps_epoch_on_completion(self):
        """End-to-end: change_epoch moved during the run, and the cached
        epoch never runs ahead of the manager's."""
        built = run_once("multi-io")
        mgr = built.manager
        assert mgr.change_epoch > 0
        assert built.strategy._freeable_cache[0] <= mgr.change_epoch
