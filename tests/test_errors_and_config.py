"""Tests for the error hierarchy and configuration dataclasses."""

import pytest

from repro import errors
from repro.config import (
    ClusterMode,
    DeviceConfig,
    KNL_DDR4,
    KNL_MCDRAM,
    MachineConfig,
    MemoryMode,
    knl_config,
)
from repro.errors import ConfigError
from repro.units import GiB


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_capacity_error_payload(self):
        err = errors.CapacityError("full", requested=100, available=10)
        assert err.requested == 100
        assert err.available == 10

    def test_deadlock_error_waiting_list(self):
        err = errors.DeadlockError("stuck", waiting=("a", "b"))
        assert err.waiting == ("a", "b")

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.SchedulingError("x")


class TestDeviceConfig:
    def test_paper_devices(self):
        assert KNL_MCDRAM.capacity == 16 * GiB
        assert KNL_DDR4.capacity == 96 * GiB
        assert KNL_MCDRAM.read_bandwidth > 4 * KNL_DDR4.read_bandwidth

    def test_scaled_copy(self):
        faster = KNL_DDR4.scaled(bandwidth_factor=2.0, capacity=GiB)
        assert faster.read_bandwidth == 2 * KNL_DDR4.read_bandwidth
        assert faster.capacity == GiB
        assert KNL_DDR4.capacity == 96 * GiB  # original untouched

    def test_validation(self):
        with pytest.raises(ConfigError):
            DeviceConfig("x", 0, 0, 1.0, 1.0)
        with pytest.raises(ConfigError):
            DeviceConfig("x", 0, 10, 1.0, 1.0, latency=-1.0)


class TestKnlConfig:
    def test_mode_encoded_in_name(self):
        cfg = knl_config(memory_mode=MemoryMode.CACHE,
                         cluster_mode=ClusterMode.QUADRANT)
        assert cfg.name == "knl-cache-quadrant"

    def test_custom_capacities(self):
        cfg = knl_config(mcdram_capacity="8GiB", ddr_capacity="48GiB")
        assert cfg.device("mcdram").capacity == 8 * GiB
        assert cfg.device("ddr4").capacity == 48 * GiB

    def test_duplicate_numa_nodes_rejected(self):
        dup = KNL_DDR4
        with pytest.raises(ConfigError):
            MachineConfig(devices=(dup, dup))

    def test_copy_bandwidth_below_streaming_cap(self):
        """Single-thread memcpy is slower than streaming on KNL cores —
        the fact that makes one IO thread a bottleneck (§V-A)."""
        cfg = knl_config()
        assert cfg.copy_bandwidth < cfg.core_mem_bandwidth
