"""Unit tests for tracing, projections aggregation, rendering, export."""

import csv
import io
import json

import pytest

from repro.sim.environment import Environment
from repro.trace.events import TraceCategory, TraceEvent
from repro.trace.export import to_csv, to_json
from repro.trace.projections import build_report
from repro.trace.render import render_timeline, render_usage_bars
from repro.trace.tracer import Tracer


@pytest.fixture
def tracer():
    env = Environment()
    t = Tracer(env)
    t.record("pe0", TraceCategory.EXECUTE, 0.0, 4.0, "kernel-a")
    t.record("pe0", TraceCategory.PREPROCESS_FETCH, 4.0, 5.0, "fetch-a")
    t.record("pe1", TraceCategory.EXECUTE, 1.0, 2.0, "kernel-b")
    t.record("io0", TraceCategory.IO_FETCH, 0.0, 3.0, "fetch-b")
    return t


class TestTraceEvent:
    def test_duration(self):
        ev = TraceEvent("pe0", TraceCategory.EXECUTE, 1.0, 3.5)
        assert ev.duration == 2.5

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent("pe0", TraceCategory.EXECUTE, 3.0, 1.0)


class TestTracer:
    def test_lanes_sorted(self, tracer):
        assert tracer.lanes() == ["io0", "pe0", "pe1"]

    def test_total_time_by_category(self, tracer):
        assert tracer.total_time(TraceCategory.EXECUTE) == 5.0
        assert tracer.total_time(TraceCategory.EXECUTE, lane="pe0") == 4.0

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(Environment(), enabled=False)
        t.record("pe0", TraceCategory.EXECUTE, 0.0, 1.0)
        assert len(t) == 0

    def test_begin_finish_helper(self):
        env = Environment()
        t = Tracer(env)
        mark = t.begin()
        env.run(until=2.0)
        duration = t.finish(mark, "pe0", TraceCategory.EXECUTE)
        assert duration == 2.0
        assert t.events[0].end == 2.0

    def test_clear(self, tracer):
        tracer.clear()
        assert len(tracer) == 0


class TestProjections:
    def test_window_defaults_to_latest_event(self, tracer):
        report = build_report(tracer)
        assert report.window == 5.0

    def test_category_totals_per_lane(self, tracer):
        report = build_report(tracer)
        pe0 = report.lanes["pe0"]
        assert pe0.execute == 4.0
        assert pe0.preprocess_fetch == 1.0
        assert pe0.idle == 0.0

    def test_idle_accounts_for_gaps(self, tracer):
        pe1 = build_report(tracer).lanes["pe1"]
        assert pe1.execute == 1.0
        assert pe1.idle == 4.0
        assert pe1.utilization == pytest.approx(0.2)

    def test_wait_fraction_combines_idle_and_overhead(self, tracer):
        pe0 = build_report(tracer).lanes["pe0"]
        # overhead (1.0) / window (5.0)
        assert pe0.wait_fraction == pytest.approx(0.2)

    def test_clipping_to_window(self, tracer):
        report = build_report(tracer, start=1.0, end=3.0)
        assert report.lanes["pe0"].execute == 2.0
        assert report.lanes["pe1"].execute == 1.0

    def test_worker_and_io_lane_split(self, tracer):
        report = build_report(tracer)
        assert [tl.lane for tl in report.worker_lanes] == ["pe0", "pe1"]
        assert [tl.lane for tl in report.io_lanes] == ["io0"]

    def test_mean_metrics(self, tracer):
        report = build_report(tracer)
        assert report.mean_utilization() == pytest.approx((0.8 + 0.2) / 2)
        assert 0.0 < report.mean_wait_fraction() < 1.0

    def test_preprocess_per_task(self, tracer):
        report = build_report(tracer)
        per_task = report.mean_preprocess_per_task({"pe0": 2, "pe1": 1})
        assert per_task == pytest.approx(1.0 / 3)

    def test_summary_rows(self, tracer):
        rows = build_report(tracer).summary_rows()
        assert [r["lane"] for r in rows] == ["io0", "pe0", "pe1"]
        assert all("utilization" in r for r in rows)


class TestRendering:
    def test_timeline_contains_lanes_and_legend(self, tracer):
        art = render_timeline(tracer, width=40)
        assert "pe0" in art and "io0" in art
        assert "legend:" in art
        assert "#" in art  # execute glyph present

    def test_empty_timeline(self):
        art = render_timeline(Tracer(Environment()))
        assert art == "(empty timeline)"

    def test_usage_bars(self, tracer):
        art = render_usage_bars(build_report(tracer), width=20)
        assert "util" in art and "wait" in art
        assert "pe0" in art

    def test_timeline_lane_filter(self, tracer):
        art = render_timeline(tracer, width=20, lanes=["pe0"])
        assert "pe0" in art and "pe1" not in art


class TestExport:
    def test_json_chrome_trace_shape(self, tracer):
        doc = json.loads(to_json(tracer))
        events = doc["traceEvents"]
        assert len(events) == 4
        first = events[0]
        assert first["ph"] == "X"
        assert first["ts"] == 0.0
        assert first["dur"] == 4.0e6  # microseconds

    def test_csv_round_trip(self, tracer):
        rows = list(csv.DictReader(io.StringIO(to_csv(tracer))))
        assert len(rows) == 4
        assert rows[0]["lane"] == "pe0"
        assert float(rows[0]["duration_s"]) == 4.0
