"""The exec engine: ordering, dedup, crash isolation, parallel equivalence."""

import dataclasses
import json

import pytest

from repro.bench.experiments import fig2_plan
from repro.bench.harness import Scale, run_plan
from repro.errors import ExperimentError
from repro.exec.cache import ResultCache
from repro.exec.context import ExecContext, execute, get_context, using
from repro.exec.engine import Engine
from repro.exec.spec import RunSpec


def selftest(value, **extra):
    return RunSpec("selftest", {"value": value, **extra},
                   label=f"selftest/{value}")


class TestEngineBasics:
    def test_results_align_with_input_order(self):
        specs = [selftest(i) for i in range(5)]
        results = Engine(jobs=1).run(specs)
        assert [r.result["value"] for r in results] == list(range(5))
        assert all(r.ok for r in results)

    def test_duplicate_specs_execute_once(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        specs = [selftest(1), selftest(2), selftest(1)]
        results = Engine(jobs=1, cache=cache).run(specs)
        assert [r.result["value"] for r in results] == [1, 2, 1]
        assert cache.stores == 2  # the duplicate shared one execution

    def test_largest_cost_runs_first(self):
        order = []
        specs = [RunSpec("selftest", {"value": i}, cost=float(i))
                 for i in range(4)]
        Engine(jobs=1, progress=lambda ev: order.append(
            ev["spec"].params["value"])).run(specs)
        assert order == [3, 2, 1, 0]

    def test_unknown_kind_is_a_structured_error(self):
        [result] = Engine(jobs=1).run([RunSpec("no-such-kind", {})])
        assert not result.ok
        assert "unknown spec kind" in result.error


class TestCrashIsolation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_one_failure_does_not_kill_the_sweep(self, jobs):
        specs = [selftest(1), RunSpec("selftest", {"fail": "boom"}),
                 selftest(2)]
        results = Engine(jobs=jobs).run(specs)
        assert [r.ok for r in results] == [True, False, True]
        assert "boom" in results[1].error
        assert "RuntimeError" in results[1].error

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        bad = RunSpec("selftest", {"fail": "x"})
        Engine(jobs=1, cache=cache).run([bad])
        assert cache.stores == 0
        assert cache.get(bad) is None


class TestCachePath:
    def test_second_run_is_answered_from_cache(self, tmp_path):
        specs = [selftest(i) for i in range(3)]
        cold = Engine(jobs=1,
                      cache=ResultCache(root=tmp_path,
                                        fingerprint="f" * 64)).run(specs)
        warm_cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        warm = Engine(jobs=1, cache=warm_cache).run(specs)
        assert [r.result for r in warm] == [r.result for r in cold]
        assert all(r.cached for r in warm)
        assert warm_cache.session_stats() == {
            "hits": 3, "misses": 0, "stores": 0}

    def test_fingerprint_change_forces_rerun(self, tmp_path):
        spec = selftest(1)
        Engine(jobs=1, cache=ResultCache(
            root=tmp_path, fingerprint="a" * 64)).run([spec])
        [rerun] = Engine(jobs=1, cache=ResultCache(
            root=tmp_path, fingerprint="b" * 64)).run([spec])
        assert not rerun.cached


class TestJobsOne:
    def test_never_builds_a_pool(self, monkeypatch):
        from concurrent import futures

        def forbidden(*a, **k):
            raise AssertionError("jobs=1 must not create a process pool")

        monkeypatch.setattr(futures, "ProcessPoolExecutor", forbidden)
        results = Engine(jobs=1).run([selftest(i) for i in range(3)])
        assert all(r.ok and r.source == "inline" for r in results)

    def test_broken_pool_falls_back_inline(self, monkeypatch):
        from concurrent import futures

        def broken(*a, **k):
            raise futures.process.BrokenProcessPool("worker died")

        monkeypatch.setattr(futures, "ProcessPoolExecutor", broken)
        results = Engine(jobs=4).run([selftest(i) for i in range(3)])
        assert all(r.ok and r.source == "inline" for r in results)


class TestContext:
    def test_default_context_is_serial_uncached(self):
        ctx = get_context()
        assert ctx.jobs == 1 and ctx.cache is None

    def test_using_restores_previous(self):
        before = get_context()
        with using(ExecContext(jobs=3)) as ctx:
            assert get_context() is ctx
        assert get_context() is before

    def test_execute_raises_naming_failed_specs(self):
        with pytest.raises(ExperimentError, match="selftest/7"):
            execute([RunSpec("selftest", {"fail": "x", "value": 7},
                             label="selftest/7")])


class TestParallelEquivalence:
    """The acceptance property: tables identical whatever --jobs is."""

    def figure_json(self, ctx):
        with using(ctx):
            result = run_plan(fig2_plan(Scale.TINY, iterations=1))
        return json.dumps(dataclasses.asdict(result), sort_keys=True)

    def test_figure_tables_are_byte_identical(self, tmp_path):
        serial = self.figure_json(ExecContext())
        cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        parallel = self.figure_json(ExecContext(jobs=2, cache=cache))
        warm_cache = ResultCache(root=tmp_path, fingerprint="f" * 64)
        warm = self.figure_json(ExecContext(jobs=2, cache=warm_cache))
        assert parallel == serial
        assert warm == serial
        assert warm_cache.session_stats()["hits"] == 2


class TestParallelExplore:
    def test_matches_serial_explorer_report(self):
        from repro.exec.explore import parallel_explore
        from repro.race.explorer import explore, stencil_runner
        from repro.units import MiB

        shape = dict(strategy="multi-io", cores=4,
                     mcdram=64 * MiB, ddr=256 * MiB,
                     total=64 * MiB, block=16 * MiB, iterations=1)
        runner = stencil_runner(**shape)
        serial = explore(runner, schedules=2, base_seed=0)
        report = parallel_explore("stencil", shape, schedules=2,
                                  base_seed=0, jobs=2, runner=runner)
        assert report.render() == serial.render()
        assert report.ok == serial.ok
