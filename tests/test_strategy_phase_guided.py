"""Tests for PhaseGuidedStrategy: phase tracking, eviction, lookahead."""

import pytest

from repro.core.api import OOCRuntimeBuilder
from repro.core.strategies import make_strategy
from repro.core.strategies.phase_guided import PhaseGuidedStrategy
from repro.lint.guidance import GUIDANCE_SCHEMA, GuidanceFile
from repro.mem.block import BlockState
from repro.runtime.chare import Chare
from repro.runtime.entry import entry
from repro.units import GiB, MiB

HBM = 256 * MiB
DDR = 2 * GiB


def site(cls, name, *, first=None, last=None, tier="hbm", priority=1.0,
         order=0, shared=False):
    rec = {"class": cls, "name": name, "shared": shared,
           "intents": ["readwrite"], "size": None, "reads": None,
           "writes": None, "tier": tier, "priority": priority,
           "fetch_order": order}
    if first is not None:
        rec["first_phase"] = first
        rec["last_phase"] = last if last is not None else first
        rec["phases"] = []
    return rec


def v2_guide(sites, phases):
    return GuidanceFile(sites=sites, schema=GUIDANCE_SCHEMA, phases=phases)


def phase_row(index, entries, *, label="", line=0):
    return {"index": index, "file": "t.py", "label": label or entries[0],
            "line": line, "trips": None, "entries": list(entries)}


class TwoPhaseWorker(Chare):
    @entry
    def setup(self, nbytes, barrier):
        self.early = self.declare_block("early", nbytes)
        self.late = self.declare_block("late", nbytes)
        barrier.contribute()

    @entry(prefetch=True, readwrite=["early"])
    def first(self, reducer):
        result = yield from self.kernel(
            flops=1e8, reads=[self.early], writes=[self.early])
        reducer.contribute(result.duration)

    @entry(prefetch=True, readwrite=["late"])
    def second(self, reducer):
        result = yield from self.kernel(
            flops=1e8, reads=[self.late], writes=[self.late])
        reducer.contribute(result.duration)


TWO_PHASE_GUIDE = v2_guide(
    sites={
        "TwoPhaseWorker.early": site("TwoPhaseWorker", "early",
                                     first=1, last=1),
        "TwoPhaseWorker.late": site("TwoPhaseWorker", "late",
                                    first=2, last=2, order=1),
    },
    phases=[
        phase_row(0, ["TwoPhaseWorker.setup"]),
        phase_row(1, ["TwoPhaseWorker.first"]),
        phase_row(2, ["TwoPhaseWorker.second"]),
    ])


def run_two_phase(guide, *, chares=8, block=16 * MiB, cores=4,
                  **builder_kwargs):
    built = OOCRuntimeBuilder(
        "phase-guided", cores=cores, mcdram_capacity=HBM, ddr_capacity=DDR,
        trace=False, strategy_kwargs={"guidance": guide},
        **builder_kwargs).build()
    rt = built.runtime
    arr = rt.create_array(TwoPhaseWorker, chares)
    barrier = rt.reducer(chares)
    arr.broadcast("setup", block, barrier)
    rt.run_until(barrier.done)
    built.manager.finalize_placement()
    for name in ("first", "second"):
        red = rt.reducer(chares)
        arr.broadcast(name, red)
        rt.run_until(red.done)
    return built, arr


class TestPhaseTracking:
    def test_entry_phase_map_built_from_phase_table(self):
        strategy = PhaseGuidedStrategy(guidance=TWO_PHASE_GUIDE)
        built = OOCRuntimeBuilder(strategy, cores=2, mcdram_capacity=HBM,
                                  ddr_capacity=DDR, trace=False).build()
        assert strategy._entry_phase == {"TwoPhaseWorker.setup": 0,
                                        "TwoPhaseWorker.first": 1,
                                        "TwoPhaseWorker.second": 2}
        assert strategy._intervals == {"TwoPhaseWorker.early": (1, 1),
                                       "TwoPhaseWorker.late": (2, 2)}
        assert built.strategy is strategy

    def test_entry_repeated_across_phases_maps_to_earliest(self):
        guide = v2_guide(sites={}, phases=[
            phase_row(0, ["W.go"]), phase_row(1, ["W.go"])])
        strategy = PhaseGuidedStrategy(guidance=guide)
        OOCRuntimeBuilder(strategy, cores=2, mcdram_capacity=HBM,
                          ddr_capacity=DDR, trace=False).build()
        assert strategy._entry_phase == {"W.go": 0}

    def test_phase_advances_monotonically_through_run(self):
        built, _ = run_two_phase(TWO_PHASE_GUIDE)
        assert built.strategy.phase == 2
        # setup is not intercepted (not a prefetch entry), so the
        # strategy first observes phase 1, then phase 2
        assert built.strategy.phase_advances == 2

    def test_phase_dead_blocks_evicted_at_boundary(self):
        # 8 x 2 x 16 MiB = 256 MiB exactly fills HBM; without the
        # phase-dead sweep, 'early' blocks would linger INHBM
        built, arr = run_two_phase(TWO_PHASE_GUIDE)
        assert built.strategy.phase_evictions_requested > 0
        assert all(c.early.state is BlockState.INDDR for c in arr)

    def test_lookahead_prefetch_fires(self):
        # during phase 1, idle IO lanes pull 'late' (first hot in
        # phase 2) so phase 2 starts partially resident
        built, _ = run_two_phase(TWO_PHASE_GUIDE)
        assert built.strategy.lookahead_prefetches > 0


class TestDegradedModes:
    def test_v1_guidance_behaves_exactly_like_multi_io(self):
        v1 = GuidanceFile(sites={
            "TwoPhaseWorker.early": site("TwoPhaseWorker", "early"),
            "TwoPhaseWorker.late": site("TwoPhaseWorker", "late", order=1),
        }, schema=1)
        phased, _ = run_two_phase(v1)
        assert phased.strategy.phase == -1
        assert phased.strategy.phase_evictions_requested == 0
        assert phased.strategy.lookahead_prefetches == 0

        built = OOCRuntimeBuilder(
            "multi-io", cores=4, mcdram_capacity=HBM, ddr_capacity=DDR,
            trace=False).build()
        rt = built.runtime
        arr = rt.create_array(TwoPhaseWorker, 8)
        barrier = rt.reducer(8)
        arr.broadcast("setup", 16 * MiB, barrier)
        rt.run_until(barrier.done)
        built.manager.finalize_placement()
        for name in ("first", "second"):
            red = rt.reducer(8)
            arr.broadcast(name, red)
            rt.run_until(red.done)
        assert phased.env.now == built.env.now

    def test_empty_guidance_still_completes(self):
        built, arr = run_two_phase(GuidanceFile(sites={}))
        assert built.manager.tasks_completed == 16

    def test_guidance_path_kwarg_resolution(self, tmp_path):
        path = tmp_path / "g.json"
        TWO_PHASE_GUIDE.write(path)
        strategy = PhaseGuidedStrategy(guidance_path=str(path))
        guide = strategy.guidance()
        assert guide.schema == GUIDANCE_SCHEMA
        assert guide.entry_phase("TwoPhaseWorker.second") == 2

    def test_guidance_env_resolution(self, tmp_path, monkeypatch):
        path = tmp_path / "g.json"
        TWO_PHASE_GUIDE.write(path)
        monkeypatch.setenv("REPRO_GUIDANCE", str(path))
        strategy = PhaseGuidedStrategy()
        assert strategy.guidance().entry_phase("TwoPhaseWorker.first") == 1

    def test_registry_construction(self):
        assert make_strategy("phase-guided").name == "phase-guided"

    def test_deterministic_repeat(self):
        t1 = run_two_phase(TWO_PHASE_GUIDE)[0].env.now
        t2 = run_two_phase(TWO_PHASE_GUIDE)[0].env.now
        assert t1 == t2

    def test_registry_invariants_after_run(self):
        built, _ = run_two_phase(TWO_PHASE_GUIDE)
        built.machine.registry.check_invariants()
        assert built.machine.hbm.allocator.peak_used <= HBM


class TestAcceptance:
    """ISSUE 9 gate: the three apps complete clean under simsan + racesan,
    and phase-guided beats static-guided on the HBM-overflow stencil."""

    def _sanitized(self, run):
        from repro.lint import SimSanitizer

        simsan = SimSanitizer(mode="record").install()
        racesan = None
        try:
            built, racesan, result = run()
            simsan.check_quiescent(built.manager)
            assert simsan.violations == [], \
                [v.render() for v in simsan.violations]
            assert racesan.findings == [], \
                [f.render() for f in racesan.findings]
            return result
        finally:
            if racesan is not None:
                racesan.uninstall()
            simsan.uninstall()

    def _build(self, strategy):
        from repro.race.detector import RaceSanitizer

        built = OOCRuntimeBuilder(strategy, cores=8,
                                  mcdram_capacity=128 * MiB,
                                  ddr_capacity=2 * GiB, trace=False).build()
        racesan = RaceSanitizer(stacks=False).install(built.env)
        return built, racesan

    def test_stencil3d_clean_under_sanitizers(self):
        from repro.apps.stencil3d import Stencil3D, StencilConfig

        def run():
            built, racesan = self._build("phase-guided")
            cfg = StencilConfig(total_bytes=256 * MiB, block_bytes=16 * MiB,
                                iterations=2)
            return built, racesan, Stencil3D(built, cfg).run()
        assert self._sanitized(run).total_time > 0

    def test_matmul_clean_under_sanitizers(self):
        from repro.apps.matmul import MatMul, MatMulConfig

        def run():
            built, racesan = self._build("phase-guided")
            cfg = MatMulConfig.for_working_set(128 * MiB, block_dim=64)
            return built, racesan, MatMul(built, cfg).run()
        assert self._sanitized(run).total_time > 0

    def test_spmv_clean_under_sanitizers(self):
        from repro.apps.spmv import SpMV, SpMVConfig

        def run():
            built, racesan = self._build("phase-guided")
            cfg = SpMVConfig(block_rows=16, block_bytes=8 * MiB,
                             vector_bytes=MiB, couplings=3, iterations=2,
                             seed=0)
            return built, racesan, SpMV(built, cfg).run()
        assert self._sanitized(run).total_time > 0

    @pytest.mark.slow
    def test_hbm_overflow_stencil_beats_static_guided(self):
        """The EXPERIMENTS.md table config: 1 GiB grid over 512 MiB HBM."""
        from repro.apps.stencil3d import Stencil3D, StencilConfig

        def run(strategy):
            built = OOCRuntimeBuilder(
                strategy, cores=64, mcdram_capacity=512 * MiB,
                ddr_capacity=3 * GiB, trace=False).build()
            cfg = StencilConfig(total_bytes=1 * GiB, block_bytes=2 * MiB,
                                iterations=3)
            return Stencil3D(built, cfg).run().total_time

        assert run("phase-guided") <= run("static-guided")
