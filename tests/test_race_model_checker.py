"""REP2xx placement-state model checker: clean surface + seeded defects."""

import os
import textwrap

from repro.race.model_checker import (check_file, check_paths, check_source,
                                      default_targets)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "racy_strategy.py")


class TestDefaultSurface:
    def test_shipped_strategies_and_mover_check_clean(self):
        report = check_paths(default_targets())
        assert list(report) == [], "\n".join(f.render() for f in report)

    def test_default_targets_exist(self):
        for target in default_targets():
            assert os.path.exists(target)


class TestSeededFixture:
    def test_every_seeded_rule_fires(self):
        rules = {f.rule for f in check_file(FIXTURE)}
        assert rules == {"REP200", "REP201", "REP202", "REP203",
                         "REP204", "REP205"}

    def test_findings_anchor_to_class_and_method(self):
        findings = check_file(FIXTURE)
        rep202 = next(f for f in findings if f.rule == "REP202")
        assert rep202.chare == "RacyIOStrategy"
        assert rep202.entry == "_rogue_main"
        assert rep202.line > 0


class TestScoping:
    def test_non_protocol_classes_are_out_of_scope(self):
        source = textwrap.dedent("""\
            class BlockCache:
                def stash(self, block):
                    block.state = BlockState.INHBM
                def drop(self, victim):
                    yield from self.mgr.mover.move(victim, self.mgr.ddr)
            """)
        assert check_source(source) == []

    def test_cross_module_strategy_subclass_is_in_scope(self):
        source = textwrap.dedent("""\
            class Custom(MultiIOThreadStrategy):
                def hack(self, block):
                    block.state = BlockState.INHBM
            """)
        rules = [f.rule for f in check_source(source)]
        assert rules == ["REP200"]

    def test_guarded_eviction_is_clean(self):
        source = textwrap.dedent("""\
            class S(Strategy):
                def tidy(self, victim):
                    if victim.in_use or victim.pinned:
                        return
                    yield from self.evict_block(victim, "io")
            """)
        assert check_source(source) == []

    def test_settle_on_every_exit_is_clean(self):
        source = textwrap.dedent("""\
            class M(DataMover):
                def move(self, block, dst):
                    block.begin_move()
                    if bad:
                        block.settle(src, state)
                        raise CapacityError("no room")
                    block.settle(dst, state)
            """)
        assert check_source(source) == []

    def test_syntax_error_reports_rep100(self):
        findings = check_source("def broken(:\n")
        assert [f.rule for f in findings] == ["REP100"]


class TestLintIntegration:
    def test_lint_pipeline_includes_model_checker(self):
        from repro.lint import check_source as lint_check
        source = textwrap.dedent("""\
            class Custom(Strategy):
                def hack(self, block):
                    block.state = BlockState.MOVING
            """)
        rules = {f.rule for f in lint_check(source)}
        assert "REP200" in rules

    def test_rules_catalog_has_race_and_rep2xx(self):
        from repro.lint.rules import RACE_RULES, RULES, STATIC_RULES
        for rule_id in ("REP200", "REP201", "REP202", "REP203",
                        "REP204", "REP205"):
            assert rule_id in STATIC_RULES and rule_id in RULES
        for rule_id in ("RACE301", "RACE302", "RACE303"):
            assert rule_id in RACE_RULES and rule_id in RULES
