"""End-to-end cross-strategy consistency checks.

These tie the whole stack together: regardless of scheduling strategy, the
*work* performed is identical (same kernels, same bytes computed on), only
its placement and timing differ.
"""

import pytest

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.core.api import OOCRuntimeBuilder
from repro.units import GiB, MiB

STRATEGIES = ["naive", "ddr-only", "single-io", "no-io", "multi-io"]


@pytest.fixture(scope="module")
def runs():
    out = {}
    for strategy in STRATEGIES:
        built = OOCRuntimeBuilder(strategy, cores=8,
                                  mcdram_capacity=128 * MiB,
                                  ddr_capacity=1 * GiB, trace=False).build()
        cfg = StencilConfig(total_bytes=256 * MiB, block_bytes=8 * MiB,
                            iterations=3)
        result = Stencil3D(built, cfg).run()
        out[strategy] = (built, result)
    return out


class TestWorkConservation:
    def test_same_task_count_everywhere(self, runs):
        counts = {s: r.tasks_completed for s, (_, r) in runs.items()}
        assert len(set(counts.values())) == 1

    def test_same_kernel_executions(self, runs):
        kernels = {s: b.machine.kernels_executed for s, (b, _) in runs.items()}
        assert len(set(kernels.values())) == 1

    def test_messages_scale_with_strategy_independence(self, runs):
        """Ghost/compute messaging is app logic: identical across
        strategies (interception adds no messages)."""
        sent = {s: b.runtime.messages_sent for s, (b, _) in runs.items()}
        assert len(set(sent.values())) == 1

    def test_prefetch_strategies_only_move_managed_bytes(self, runs):
        block = 8 * MiB
        for strategy in ("single-io", "no-io", "multi-io"):
            built, _ = runs[strategy]
            assert built.strategy.bytes_fetched % block == 0
            assert built.strategy.bytes_evicted % block == 0

    def test_static_strategies_never_move(self, runs):
        for strategy in ("naive", "ddr-only"):
            built, _ = runs[strategy]
            assert built.machine.mover.moves_completed == 0

    def test_timing_order_sanity(self, runs):
        """The coarse performance ordering the whole paper rests on."""
        times = {s: r.total_time for s, (_, r) in runs.items()}
        assert times["ddr-only"] > times["multi-io"]
        assert times["naive"] > times["multi-io"]
