"""bwlint v2 phase analysis: REP310-314 fixtures, goldens, summaries."""

import ast
import textwrap

from repro.lint.guidance import build_guidance, render_timeline
from repro.lint.phases import analyze_phases  # noqa: F401 - import check
from repro.lint.traffic import analyze_tree, check_tree


def phase_rules(body: str) -> list[str]:
    tree = ast.parse(textwrap.dedent(body))
    return sorted(f.rule for f in check_tree(tree, "t.py")
                  if f.rule.startswith("REP31"))


def timeline_of(body: str):
    tree = ast.parse(textwrap.dedent(body))
    return analyze_tree(tree, "t.py").timeline


def sites_of(body: str):
    tree = ast.parse(textwrap.dedent(body))
    return analyze_tree(tree, "t.py").sites


# Two-phase clean module: the driver dispatches produce() then consume(),
# the producer writes the block the consumer reads.  Every REP31x
# fixture below is a small perturbation of this shape.
CLEAN = """
    from repro.runtime.chare import Chare
    from repro.runtime.entry import entry

    class C(Chare):
        @entry
        def setup(self, barrier):
            self.a = self.declare_block("a", 1024)
            barrier.contribute()

        @entry(prefetch=True, writeonly=["a"])
        def produce(self, red):
            result = yield from self.kernel(
                flops=1.0, reads=[], writes=[self.a])
            red.contribute(result.duration)

        @entry(prefetch=True, readonly=["a"])
        def consume(self, red):
            result = yield from self.kernel(
                flops=1.0, reads=[self.a], writes=[])
            red.contribute(result.duration)

    def main(arr, red):
        arr.broadcast("setup", red)
        arr.broadcast("produce", red)
        arr.broadcast("consume", red)
"""


class TestPhaseSegmentation:
    def test_clean_module_has_no_phase_findings(self):
        assert phase_rules(CLEAN) == []

    def test_one_phase_per_driver_dispatch_in_line_order(self):
        timeline = timeline_of(CLEAN)
        assert [p.label for p in timeline.phases] == \
            ["C.setup", "C.produce", "C.consume"]
        assert [p.index for p in timeline.phases] == [0, 1, 2]
        assert not timeline.suppressed

    def test_site_interval_spans_first_to_last_touch(self):
        timeline = timeline_of(CLEAN)
        assert timeline.interval("C.a") == (1, 2)

    def test_driver_loop_trips_multiply_the_phase(self):
        timeline = timeline_of("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1024)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[self.a])
                    red.contribute(result.duration)

            def main(arr, red):
                arr.broadcast("setup", red)
                for it in range(12):
                    arr.broadcast("go", red)
        """)
        go = timeline.phases[1]
        assert go.trips is not None and go.trips.value == 12.0

    def test_non_literal_send_suppresses_the_family(self):
        timeline = timeline_of("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def orphan(self, red):
                    red.contribute(0)

            def main(arr, red, which):
                arr.broadcast(which, red)
        """)
        assert timeline.suppressed
        assert timeline.findings == []


class TestRuleFixtures:
    def test_rep310_phase_dead_still_resident(self):
        # 12 GiB block 'a' is last touched in phase 1; phase 2 needs
        # another 12 GiB — together over the 16 GiB tier while 'a'
        # stays resident
        assert phase_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 12 * 2**30)
                    self.b = self.declare_block("b", 12 * 2**30)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"])
                def first(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[self.a])
                    red.contribute(result.duration)

                @entry(prefetch=True, readwrite=["b"])
                def second(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.b], writes=[self.b])
                    red.contribute(result.duration)

            def main(arr, red):
                arr.broadcast("setup", red)
                arr.broadcast("first", red)
                arr.broadcast("second", red)
        """) == ["REP310"]

    def test_rep311_cross_phase_intent_conflict(self):
        # the consumer phase comes before the producer phase
        assert phase_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1024)
                    barrier.contribute()

                @entry(prefetch=True, writeonly=["a"])
                def produce(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[], writes=[self.a])
                    red.contribute(result.duration)

                @entry(prefetch=True, readonly=["a"])
                def consume(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[])
                    red.contribute(result.duration)

            def main(arr, red):
                arr.broadcast("setup", red)
                arr.broadcast("consume", red)
                arr.broadcast("produce", red)
        """) == ["REP311"]

    def test_rep312_fetch_before_first_use(self):
        # early() declares 'a' (so the runtime fetches it) but only
        # late(), a phase later, actually touches it
        assert phase_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1024)
                    self.b = self.declare_block("b", 1024)
                    barrier.contribute()

                @entry(prefetch=True, readonly=["a"], readwrite=["b"])
                def early(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.b], writes=[self.b])
                    red.contribute(result.duration)

                @entry(prefetch=True, readonly=["a"])
                def late(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[])
                    red.contribute(result.duration)

            def main(arr, red):
                arr.broadcast("setup", red)
                arr.broadcast("early", red)
                arr.broadcast("late", red)
        """) == ["REP312"]

    def test_rep313_phase_footprint_exceeds_hbm(self):
        # one phase's two entries declare 10 GiB + 10 GiB > 16 GiB HBM
        assert phase_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 10 * 2**30)
                    self.b = self.declare_block("b", 10 * 2**30)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"])
                def go(self, red):
                    self.send("helper", red)
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[self.a])
                    red.contribute(result.duration)

                @entry(prefetch=True, readwrite=["b"])
                def helper(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.b], writes=[self.b])
                    red.contribute(result.duration)

            def main(arr, red):
                arr.broadcast("setup", red)
                arr.broadcast("go", red)
        """) == ["REP313"]

    def test_rep314_unreachable_entry(self):
        # orphan()'s name appears in no string constant anywhere
        assert phase_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1024)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[self.a])
                    red.contribute(result.duration)

                @entry
                def orphan(self, red):
                    red.contribute(0)

            def main(arr, red):
                arr.broadcast("setup", red)
                arr.broadcast("go", red)
        """) == ["REP314"]

    def test_entry_spec_style_name_suppresses_rep314(self):
        # dispatch through entry_spec("plain")-style lookups is invisible
        # to the message graph; the bare string constant must suppress
        assert phase_rules("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 1024)
                    barrier.contribute()

                @entry(prefetch=True, readwrite=["a"])
                def go(self, red):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[self.a])
                    red.contribute(result.duration)

                @entry
                def orphan(self, red):
                    red.contribute(0)

            def main(arr, rt, red):
                arr.broadcast("setup", red)
                arr.broadcast("go", red)
                rt.lookup(C, "orphan")
        """) == []


# the per-app goldens pin down phase count, ordering, trip inference and
# per-(site, phase) volumes in one readable artifact; regenerate with
#   python -m repro guide --phases src/repro/apps/<app>.py
GOLDEN_STENCIL = """\
phase 0: StencilChare.setup [src/repro/apps/stencil3d.py:200] trips=?
  entry StencilChare.setup
phase 1: StencilChare.exchange [src/repro/apps/stencil3d.py:225] trips=20
  entry StencilChare.compute_kernel
  entry StencilChare.exchange
  entry StencilChare.recv_ghost
  site StencilChare.grid reads=67108864 writes=67108864
"""

GOLDEN_MATMUL = """\
phase 0: MatMulPanels.setup [src/repro/apps/matmul.py:205] trips=1
  entry MatMulPanels.setup
phase 1: MatMulChare.setup [src/repro/apps/matmul.py:208] trips=1
  entry MatMulChare.setup
phase 2: MatMulChare.multiply [src/repro/apps/matmul.py:215] trips=1
  entry MatMulChare.multiply
  site MatMulChare.C reads=- writes=524288
  site MatMulPanels.A reads=33554432 writes=-
  site MatMulPanels.B reads=33554432 writes=-
"""

GOLDEN_SPMV = """\
phase 0: SpMVVectors.setup [src/repro/apps/spmv.py:157] trips=1
  entry SpMVVectors.setup
phase 1: SpMVChare.setup [src/repro/apps/spmv.py:165] trips=64
  entry SpMVChare.setup
phase 2: SpMVChare.multiply [src/repro/apps/spmv.py:178] trips=10
  entry SpMVChare.multiply
  site SpMVChare.A reads=8388608 writes=-
  site SpMVChare.y reads=- writes=262144
  site SpMVVectors.x reads=262144 writes=-
"""


class TestGoldenTimelines:
    def _render(self, app: str) -> str:
        return render_timeline(build_guidance([f"src/repro/apps/{app}.py"]))

    def test_stencil3d_timeline(self):
        assert self._render("stencil3d") == GOLDEN_STENCIL

    def test_matmul_timeline(self):
        assert self._render("matmul") == GOLDEN_MATMUL

    def test_spmv_timeline(self):
        assert self._render("spmv") == GOLDEN_SPMV

    def test_render_is_deterministic(self):
        assert self._render("spmv") == self._render("spmv")


# -- interprocedural summaries vs manual inlining ---------------------------

HELPER_BASED = """
    from repro.runtime.chare import Chare
    from repro.runtime.entry import entry

    class C(Chare):
        @entry
        def setup(self, barrier):
            self.a = self.declare_block("a", 4096)
            barrier.contribute()

        def inner(self, red):
            result = yield from self.kernel(
                flops=1.0, reads=[self.a], writes=[self.a])
            red.contribute(result.duration)

        def outer(self, red):
            for j in range(3):
                yield from self.inner(red)

        @entry(prefetch=True, readwrite=["a"])
        def go(self, red):
            for i in range(5):
                yield from self.outer(red)
"""

INLINED = """
    from repro.runtime.chare import Chare
    from repro.runtime.entry import entry

    class C(Chare):
        @entry
        def setup(self, barrier):
            self.a = self.declare_block("a", 4096)
            barrier.contribute()

        @entry(prefetch=True, readwrite=["a"])
        def go(self, red):
            for i in range(5):
                for j in range(3):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[self.a])
                    red.contribute(result.duration)
"""


class TestSummaryVsInlined:
    def test_summary_analysis_matches_manual_inlining(self):
        summarized = sites_of(HELPER_BASED)["C.a"]
        inlined = sites_of(INLINED)["C.a"]
        assert summarized.reads is not None and inlined.reads is not None
        assert summarized.reads.value == inlined.reads.value == 15 * 4096.0
        assert summarized.writes.value == inlined.writes.value

    def test_recursive_helper_widens_to_unknown(self):
        site = sites_of("""
            from repro.runtime.chare import Chare
            from repro.runtime.entry import entry

            class C(Chare):
                @entry
                def setup(self, barrier):
                    self.a = self.declare_block("a", 4096)
                    barrier.contribute()

                def spin(self, red, n):
                    result = yield from self.kernel(
                        flops=1.0, reads=[self.a], writes=[self.a])
                    if n:
                        yield from self.spin(red, n - 1)

                @entry(prefetch=True, readwrite=["a"])
                def go(self, red):
                    yield from self.spin(red, 3)
        """)["C.a"]
        # the volume is attributed but its magnitude is unknown
        assert site.reads is not None
        assert not site.reads.known()
