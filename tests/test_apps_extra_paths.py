"""Extra application paths: traffic accounting and reuse diagnostics."""

import pytest

from repro.apps.matmul import MatMul, MatMulConfig
from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.core.api import OOCRuntimeBuilder
from repro.units import GiB, MiB


def builder(strategy, cores=8, **kwargs):
    return OOCRuntimeBuilder(strategy, cores=cores,
                             mcdram_capacity=256 * MiB,
                             ddr_capacity=2 * GiB, trace=False, **kwargs)


class TestStencilTraffic:
    def test_kernel_traffic_scales_with_sweep_factor(self):
        def kernel_time(factor):
            built = builder("hbm-only", cores=4).build()
            cfg = StencilConfig(total_bytes=64 * MiB, block_bytes=16 * MiB,
                                iterations=1, sweep_traffic_factor=factor,
                                inner_sweeps=1)
            return Stencil3D(built, cfg).run().mean_kernel_time

        assert kernel_time(16.0) > kernel_time(2.0)

    def test_ghost_messages_counted(self):
        built = builder("naive", cores=4).build()
        cfg = StencilConfig(total_bytes=128 * MiB, block_bytes=16 * MiB,
                            iterations=1)
        app = Stencil3D(built, cfg)
        before = built.runtime.messages_sent
        app.run()
        # 8 chares x 3 neighbours ghosts + 8 compute self-sends + bookkeeping
        assert built.runtime.messages_sent - before >= 8 * 3 + 8

    def test_iteration_times_recorded_per_iteration(self):
        built = builder("naive", cores=4).build()
        cfg = StencilConfig(total_bytes=128 * MiB, block_bytes=16 * MiB,
                            iterations=4)
        result = Stencil3D(built, cfg).run()
        assert len(result.iteration_times) == 4
        assert all(t > 0 for t in result.iteration_times)


class TestMatMulReuse:
    def test_c_blocks_private_a_b_shared(self):
        built = builder("naive").build()
        cfg = MatMulConfig(n=512, grid=4)
        app = MatMul(built, cfg)
        app.run()
        # A panels: 4, B panels: 4, C blocks: 16
        panels = [b for b in built.machine.registry if "shared" in b.name]
        cs = [b for b in built.machine.registry if b.name.endswith(".C")]
        assert len(panels) == 8
        assert len(cs) == 16

    def test_pack_factor_scales_kernel_time(self):
        def kernel_time(pack):
            built = builder("hbm-only", cores=4).build()
            cfg = MatMulConfig(n=512, grid=4, mkl_pack_factor=pack,
                               mkl_scratch_fraction=0.0)
            return MatMul(built, cfg).run().mean_kernel_time

        assert kernel_time(8.0) > kernel_time(1.0)

    def test_block_cyclic_keeps_rows_concurrent(self):
        built = builder("naive", cores=4).build()   # 2x2 PE grid
        cfg = MatMulConfig(n=512, grid=4)
        app = MatMul(built, cfg)
        pes_of_row0 = {app.array[(0, j)].pe_id for j in range(4)}
        assert len(pes_of_row0) == 2  # row spread over a PE-grid row
