"""Tests for the OOCRuntimeBuilder façade and package-level API."""

import pytest

import repro
from repro.config import ClusterMode, MemoryMode
from repro.core.api import OOCRuntimeBuilder
from repro.core.eviction import LRUEviction
from repro.core.strategies import MultiIOThreadStrategy
from repro.units import GiB, MiB


class TestBuilder:
    def test_default_build_shape(self):
        built = OOCRuntimeBuilder().build()
        assert built.strategy.name == "multi-io"
        assert len(built.runtime.pes) == 64
        assert built.machine.hbm.capacity == 16 * GiB
        assert built.runtime.interceptor is built.manager

    def test_strategy_instance_accepted(self):
        strategy = MultiIOThreadStrategy(evict_mode="worker")
        built = OOCRuntimeBuilder(strategy, cores=2).build()
        assert built.strategy is strategy

    def test_strategy_kwargs_forwarded(self):
        built = OOCRuntimeBuilder(
            "multi-io", cores=2,
            strategy_kwargs={"evict_mode": "worker"}).build()
        assert built.strategy.evict_mode == "worker"

    def test_eviction_policy_forwarded(self):
        policy = LRUEviction()
        built = OOCRuntimeBuilder("multi-io", cores=2,
                                  eviction=policy).build()
        assert built.manager.eviction is policy

    def test_capacity_strings_parsed(self):
        built = OOCRuntimeBuilder("naive", cores=2,
                                  mcdram_capacity="512MiB",
                                  ddr_capacity="2GiB").build()
        assert built.machine.hbm.capacity == 512 * MiB

    def test_trace_flag(self):
        assert OOCRuntimeBuilder(cores=2, trace=False).build() \
            .runtime.tracer.enabled is False

    def test_memory_and_cluster_modes(self):
        built = OOCRuntimeBuilder(
            "naive", cores=2, cluster_mode=ClusterMode.QUADRANT).build()
        assert "quadrant" in built.machine.config.name

    def test_two_builds_are_independent(self):
        b1 = OOCRuntimeBuilder("multi-io", cores=2).build()
        b2 = OOCRuntimeBuilder("multi-io", cores=2).build()
        assert b1.env is not b2.env
        assert b1.machine.registry is not b2.machine.registry


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_strategies_registry_exported(self):
        assert "multi-io" in repro.STRATEGIES
        assert repro.make_strategy("naive").name == "naive"
