"""Self-gate: the repository's own sources must pass repro.lint (and ruff).

Runs in the default pytest path so declaration drift in the apps or the
examples fails CI immediately.  The repro.lint half always runs; the ruff
half runs only when ruff is installed (its configuration lives in
pyproject.toml) and skips gracefully otherwise.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

from repro.lint import check_paths

ROOT = Path(__file__).resolve().parent.parent


def test_repro_lint_sources_and_examples_clean():
    report = check_paths([ROOT / "src" / "repro", ROOT / "examples"])
    assert report.ok(strict=True), "\n" + report.render()


def test_repro_lint_test_chares_clean():
    """Chare classes defined by the tests themselves (the seeded fixtures
    under tests/fixtures/ are exempt — they exist to be broken)."""
    report = check_paths(sorted((ROOT / "tests").glob("*.py")))
    assert report.ok(strict=True), "\n" + report.render()


def test_seeded_fixture_still_trips_the_checker():
    """Guards the gate itself: a checker that stops finding anything would
    make the two tests above pass vacuously."""
    report = check_paths([ROOT / "tests" / "fixtures"])
    assert not report.ok()


def test_ruff_self_check():
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff is not installed in this environment")
    # Gate on ruff's critical subset (syntax errors, undefined names,
    # invalid comparisons); the fuller style selection in pyproject.toml is
    # advisory for interactive use.
    proc = subprocess.run(
        [ruff, "check", "--select", "E9,F63,F7,F82",
         str(ROOT / "src" / "repro")],
        capture_output=True, text=True, cwd=ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr
