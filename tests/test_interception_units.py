"""Unit tests for the interception data types."""

from repro.runtime.interception import ReadyTask, RetryFetch
from repro.runtime.message import Message
from repro.runtime.chare import Chare
from repro.runtime.entry import entry


class Target(Chare):
    @entry
    def go(self):
        pass


class TestReadyTask:
    def test_wraps_message_and_task(self):
        chare = Target()
        msg = Message(chare, Target._entry_specs["go"])
        ready = ReadyTask(msg, task="the-task")
        assert ready.message is msg
        assert ready.task == "the-task"
        assert "go" in repr(ready)


class TestRetryFetch:
    def test_is_stateless_marker(self):
        assert not RetryFetch.__slots__
        assert repr(RetryFetch()) == "<RetryFetch>"
