"""The strategy leaderboard: plans, ranking fold, CLI integration."""

from __future__ import annotations

import math

import pytest

from repro.bench.harness import Scale
from repro.bench.leaderboard import (LEADERBOARD_APPS, leaderboard_plans,
                                     rank_figures, render_leaderboard)
from repro.cli import main
from repro.core.strategies import STRATEGIES
from repro.obs.report import SweepFigure, assemble_sweep, replicate_specs
from repro.obs.stats import summarize


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestPlans:
    def test_full_sweep_is_square(self) -> None:
        plans = leaderboard_plans(Scale.TINY)
        assert [p.figure for p in plans] == \
            [f"leaderboard/{app}" for app in LEADERBOARD_APPS]
        for plan in plans:
            assert len(plan.specs) == len(STRATEGIES)
            strategies = [spec.params["strategy"] for spec in plan.specs]
            assert strategies == sorted(STRATEGIES)

    def test_working_sets_fit_scaled_hbm(self) -> None:
        # hbm-only refuses overflow working sets; every cell must fit
        for plan in leaderboard_plans(Scale.TINY):
            for spec in plan.specs:
                p = spec.params
                if spec.kind == "stencil":
                    ws = p["total"]
                elif spec.kind == "matmul":
                    ws = p["working_set"]
                elif spec.kind == "spmv":
                    ws = p["block_rows"] * p["block_bytes"]
                else:
                    ws = 3 * p["array_bytes"] * p["chares"]
                assert ws <= p["mcdram"], (spec.kind, ws, p["mcdram"])

    def test_unknown_app_raises(self) -> None:
        with pytest.raises(ValueError, match="unknown leaderboard app"):
            leaderboard_plans(Scale.TINY, apps=["jacobi"])


def _sweep(x: str, rows: dict[str, list[float]],
           replicates: int) -> SweepFigure:
    values = {x: rows}
    return SweepFigure(
        figure=f"leaderboard/{x}", description=x, unit="s",
        replicates=replicates, baseline=None, values=values,
        stats={x: {k: summarize(v) for k, v in rows.items()}},
        tests={x: {k: None for k in rows}})


class TestRanking:
    def test_geomean_slowdown_and_rank_order(self) -> None:
        figures = [
            _sweep("app1", {"a": [1.0], "b": [2.0]}, 1),
            _sweep("app2", {"a": [4.0], "b": [2.0]}, 1),
        ]
        summary = rank_figures(figures)
        # a: geomean(1.0, 2.0) = sqrt(2); b: geomean(2.0, 1.0) = sqrt(2)
        for label in ("a", "b"):
            score = summary.stats[label]["slowdown"].mean
            assert score == pytest.approx(math.sqrt(2.0))

    def test_best_everywhere_ranks_first_at_1x(self) -> None:
        figures = [
            _sweep("app1", {"fast": [1.0, 1.1], "slow": [3.0, 3.3]}, 2),
            _sweep("app2", {"fast": [5.0, 5.5], "slow": [10.0, 11.0]}, 2),
        ]
        summary = rank_figures(figures)
        labels = list(summary.stats)
        assert labels == ["fast", "slow"]
        assert summary.stats["fast"]["slowdown"].mean == pytest.approx(1.0)
        # slowdowns are computed within each replicate, so the constant
        # ratio yields a zero-spread sample despite noisy absolute times
        assert summary.stats["slow"]["slowdown"].mean == \
            pytest.approx(math.sqrt(3.0 * 2.0))

    def test_render_mentions_every_strategy_ranked(self) -> None:
        figures = [_sweep("app1", {"x": [2.0], "y": [1.0]}, 1)]
        summary = rank_figures(figures)
        text = render_leaderboard(summary, figures)
        lines = text.splitlines()
        assert any(line.lstrip().startswith("1  y") for line in lines)
        assert any(line.lstrip().startswith("2  x") for line in lines)

    def test_empty_figures_raise(self) -> None:
        with pytest.raises(ValueError):
            rank_figures([])


class TestEndToEnd:
    def test_replicated_sweep_assembles_and_ranks(self) -> None:
        from repro.exec import run_specs

        plans = leaderboard_plans(Scale.TINY, apps=["stream"],
                                  strategies=["hbm-only", "ddr-only"],
                                  iterations=1)
        specs = replicate_specs(plans, 2)
        results = run_specs(specs, jobs=1, cache=None)
        assert all(r.ok for r in results), [r.error for r in results]
        figures = assemble_sweep(plans, 2, [r.result for r in results])
        summary = rank_figures(figures)
        assert list(summary.stats) == ["hbm-only", "ddr-only"]
        assert summary.stats["hbm-only"]["slowdown"].mean == \
            pytest.approx(1.0)
        assert summary.stats["ddr-only"]["slowdown"].mean > 1.0


class TestCLI:
    def test_leaderboard_ranks_and_writes_html(self, capsys,
                                               tmp_path) -> None:
        out = tmp_path / "lb.html"
        code, stdout, stderr = run_cli(capsys, [
            "leaderboard", "--scale", "tiny", "--replicates", "2",
            "--iterations", "1", "--apps", "stencil", "stream",
            "--baseline", "multi-io", "-o", str(out), "--no-cache"])
        assert code == 0
        assert "== repro leaderboard:" in stdout
        for strategy in STRATEGIES:
            assert strategy in stdout
        assert "significant vs baseline multi-io" in stdout
        html = out.read_text()
        assert "leaderboard/stencil" in html and "geometric-mean" in html
        assert "written to" in stderr

    def test_unknown_app_exits_2(self, capsys, tmp_path) -> None:
        code, _, err = run_cli(capsys, [
            "leaderboard", "--scale", "tiny", "--apps", "jacobi",
            "-o", str(tmp_path / "lb.html")])
        assert code == 2 and "jacobi" in err

    def test_baseline_must_be_swept(self, capsys, tmp_path) -> None:
        code, _, err = run_cli(capsys, [
            "leaderboard", "--scale", "tiny",
            "--strategies", "hbm-only", "ddr-only",
            "--baseline", "multi-io", "-o", str(tmp_path / "lb.html")])
        assert code == 2 and "multi-io" in err
