"""Unit tests for entry-method declarations and chares."""

import pytest

from repro.errors import ChareError, EntryMethodError
from repro.machine.knl import build_knl
from repro.mem.block import AccessIntent, DataBlock
from repro.runtime.chare import Chare, NodeGroup
from repro.runtime.entry import entry
from repro.runtime.runtime import CharmRuntime
from repro.sim.environment import Environment
from repro.units import GiB, MiB


def make_runtime(cores=4):
    node = build_knl(Environment(), cores=cores, mcdram_capacity=GiB,
                     ddr_capacity=4 * GiB)
    return CharmRuntime(node)


class Sample(Chare):
    @entry
    def plain(self, x):
        self.seen = x

    @entry(prefetch=True, readwrite=["a"], writeonly=["b"])
    def compute(self):
        yield self.runtime.env.timeout(0.0)

    @entry(readonly=["blocks"])
    def uses_list(self):
        pass


class TestEntryDeclaration:
    def test_specs_collected_on_subclass(self):
        assert set(Sample._entry_specs) == {"plain", "compute", "uses_list"}

    def test_prefetch_flag_and_deps(self):
        spec = Sample._entry_specs["compute"]
        assert spec.prefetch
        assert spec.deps == (("a", AccessIntent.READWRITE),
                             ("b", AccessIntent.WRITEONLY))

    def test_prefetch_without_deps_rejected(self):
        with pytest.raises(EntryMethodError):
            @entry(prefetch=True)
            def bad(self):
                pass

    def test_duplicate_intent_rejected(self):
        with pytest.raises(EntryMethodError):
            @entry(readonly=["a"], readwrite=["a"])
            def bad(self):
                pass

    def test_specs_inherit_and_override(self):
        class Derived(Sample):
            @entry
            def plain(self, x):  # override
                self.seen = x * 2

        assert set(Derived._entry_specs) == {"plain", "compute", "uses_list"}
        assert Derived._entry_specs["plain"].func is not \
            Sample._entry_specs["plain"].func


class TestDepResolution:
    def test_resolves_single_blocks(self):
        rt = make_runtime()
        arr = rt.create_array(Sample, 1)
        chare = arr[(0,)]
        chare.a = chare.declare_block("a", MiB)
        chare.b = chare.declare_block("b", MiB)
        deps = Sample._entry_specs["compute"].resolve_deps(chare)
        assert [(b.name.split(".")[-1], i.value) for b, i in deps] == \
            [("a", "readwrite"), ("b", "writeonly")]

    def test_resolves_block_lists(self):
        rt = make_runtime()
        arr = rt.create_array(Sample, 1)
        chare = arr[(0,)]
        chare.blocks = [chare.declare_block(f"x{i}", MiB) for i in range(3)]
        deps = Sample._entry_specs["uses_list"].resolve_deps(chare)
        assert len(deps) == 3

    def test_missing_attribute_rejected(self):
        rt = make_runtime()
        arr = rt.create_array(Sample, 1)
        with pytest.raises(EntryMethodError):
            Sample._entry_specs["compute"].resolve_deps(arr[(0,)])

    def test_none_attribute_skipped(self):
        rt = make_runtime()
        arr = rt.create_array(Sample, 1)
        chare = arr[(0,)]
        chare.a = None
        chare.b = chare.declare_block("b", MiB)
        deps = Sample._entry_specs["compute"].resolve_deps(chare)
        assert len(deps) == 1

    def test_wrong_type_rejected(self):
        rt = make_runtime()
        arr = rt.create_array(Sample, 1)
        chare = arr[(0,)]
        chare.a = "not a block"
        chare.b = None
        with pytest.raises(EntryMethodError):
            Sample._entry_specs["compute"].resolve_deps(chare)


class TestDepResolutionErrors:
    """Every resolve_deps failure names chare, entry and attribute — these
    errors surface deep in the interception layer, far from the cause."""

    def make_chare(self):
        rt = make_runtime()
        return rt.create_array(Sample, 1)[(0,)]

    def test_missing_attribute_names_the_scene(self):
        chare = self.make_chare()
        with pytest.raises(EntryMethodError, match=r"Sample\.compute.*'a'"):
            Sample._entry_specs["compute"].resolve_deps(chare)

    def test_wrong_type_names_the_scene(self):
        chare = self.make_chare()
        chare.a = 42
        chare.b = None
        with pytest.raises(EntryMethodError,
                           match=r"Sample\.compute.*'a'.*int"):
            Sample._entry_specs["compute"].resolve_deps(chare)

    def test_bad_item_names_scene_and_index(self):
        chare = self.make_chare()
        chare.blocks = [chare.declare_block("x", MiB), "oops"]
        with pytest.raises(
                EntryMethodError,
                match=r"Sample\.uses_list.*'blocks'.*index 1.*str"):
            Sample._entry_specs["uses_list"].resolve_deps(chare)

    def test_generic_iterables_accepted(self):
        """Any non-string iterable of blocks works: tuples, dict views,
        generators — resolution happens once, at message time."""
        chare = self.make_chare()
        blocks = {i: chare.declare_block(f"x{i}", MiB) for i in range(3)}
        spec = Sample._entry_specs["uses_list"]
        chare.blocks = tuple(blocks.values())
        assert len(spec.resolve_deps(chare)) == 3
        chare.blocks = blocks.values()
        assert len(spec.resolve_deps(chare)) == 3
        chare.blocks = (b for b in blocks.values())
        assert len(spec.resolve_deps(chare)) == 3

    def test_string_attribute_is_not_treated_as_iterable(self):
        chare = self.make_chare()
        chare.a = "abc"
        chare.b = None
        with pytest.raises(EntryMethodError, match="str"):
            Sample._entry_specs["compute"].resolve_deps(chare)

    def test_message_time_resolution_sees_reassignment(self):
        """Deps resolve per message, so data-dependent block lists track
        the attribute's value at delivery time, not declaration time."""
        chare = self.make_chare()
        spec = Sample._entry_specs["uses_list"]
        b0 = chare.declare_block("x0", MiB)
        b1 = chare.declare_block("x1", MiB)
        chare.blocks = [b0]
        assert len(spec.resolve_deps(chare)) == 1
        chare.blocks = [b0, b1]
        assert len(spec.resolve_deps(chare)) == 2


class TestChareArray:
    def test_create_1d_from_int(self):
        rt = make_runtime()
        arr = rt.create_array(Sample, 6)
        assert len(arr) == 6
        assert arr[2].index == (2,)

    def test_round_robin_default_placement(self):
        rt = make_runtime(cores=4)
        arr = rt.create_array(Sample, 8)
        pes = [arr[(i,)].pe_id for i in range(8)]
        assert pes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_unknown_element_rejected(self):
        rt = make_runtime()
        arr = rt.create_array(Sample, 2)
        with pytest.raises(ChareError):
            arr[(9,)]

    def test_empty_array_rejected(self):
        rt = make_runtime()
        with pytest.raises(ChareError):
            rt.create_array(Sample, [])

    def test_declare_block_registers(self):
        rt = make_runtime()
        arr = rt.create_array(Sample, 1)
        block = arr[(0,)].declare_block("grid", 2 * MiB)
        assert block in rt.machine.registry
        assert block.owner is arr[(0,)]
        assert block.name == "Sample[0].grid"

    def test_declare_block_on_unbound_chare_rejected(self):
        with pytest.raises(ChareError):
            Sample().declare_block("x", 10)


class TestNodeGroup:
    def test_share_block_get_or_create(self):
        rt = make_runtime()
        group = rt.create_node_group(NodeGroup)
        a1 = group.share_block("k1", MiB)
        a2 = group.share_block("k1", MiB)
        assert a1 is a2
        assert len(rt.machine.registry) == 1
