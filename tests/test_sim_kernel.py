"""Kernel drain loop vs reference loop: equivalence and handle semantics.

The fused kernel (:mod:`repro.sim.kernel`) and the reference loop
(:meth:`Environment._drain_reference`) must produce identical simulations;
``reuse_handles=True`` additionally recycles each process's private handle
event through the factories.  These tests run one mixed workload — stores,
resources, timeouts, conditions, interrupts, mid-run spawns, failures —
under every loop/mode combination and require identical traces, then pin
down the handle-specific corners (identity recycling, condition parking,
cancellation, name aliasing).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.process import HANDLE_NAME
from repro.sim.resources import Resource, Store


def _mixed_workload(env: Environment) -> list:
    """A workload touching every dispatch path; returns its event trace."""
    trace: list = []
    store: Store = Store(env, name="s")
    spill: Store = Store(env, name="spill")
    res = Resource(env, capacity=2, name="r")

    def producer():
        for k in range(6):
            store.put(k)
            yield env.timeout(1.0)
        spill.put("late")

    def consumer(tag):
        while True:
            item = yield store.get()
            trace.append((env.now, tag, "got", item))
            if item >= 4:
                return item
            yield res.request()
            yield env.timeout(0.25)
            res.release()

    def condition_waiter():
        # parks a factory event inside a condition (AllOf) — in reuse mode
        # this routes the handle through the overflow-callback path
        got = yield env.all_of([spill.get(), env.timeout(9.0)])
        trace.append((env.now, "cond", sorted(map(str, got.values()))))

    def any_waiter():
        first = yield env.any_of([env.timeout(2.5, "quick"),
                                  env.timeout(50.0, "slow")])
        trace.append((env.now, "any", sorted(map(str, first.values()))))

    def crasher():
        yield env.timeout(3.0)
        raise RuntimeError("boom")

    def guardian():
        victim = env.process(crasher(), name="crasher")
        try:
            yield victim
        except RuntimeError as exc:
            trace.append((env.now, "guard", str(exc)))

    def interrupter():
        target = env.process(sleeper(), name="sleeper")
        yield env.timeout(1.5)
        target.interrupt("wake")

    def sleeper():
        try:
            yield env.timeout(40.0)
        except ProcessKilled as exc:
            trace.append((env.now, "killed", str(exc)))

    def spawner():
        # urgent bootstrap arriving mid-batch: the kernel must preempt
        yield env.timeout(2.0)
        for i in range(3):
            env.process(late_child(i), name=f"late{i}")
            yield env.timeout(0.0)

    def late_child(i):
        yield env.timeout(0.5)
        trace.append((env.now, "late", i))

    def canceller():
        doomed = env.timeout(7.0)
        kept = env.timeout(0.75)
        assert env.cancel(doomed)
        got = yield kept
        trace.append((env.now, "cancel", got))

    def chain_parent():
        child = env.process(chain_child(), name="chain-child")
        value = yield child
        trace.append((env.now, "chain", value))

    def chain_child():
        yield env.timeout(4.5)
        return "child-done"

    for i in range(2):
        env.process(consumer(f"c{i}"), name=f"c{i}")
    for fn in (producer, condition_waiter, any_waiter, guardian,
               interrupter, spawner, canceller, chain_parent):
        env.process(fn(), name=fn.__name__)
    env.run()
    trace.append(("end", env.now))
    return trace


ENV_MODES = [
    pytest.param(dict(), id="kernel-plain"),
    pytest.param(dict(kernel=False), id="reference"),
    pytest.param(dict(reuse_handles=True), id="kernel-reuse"),
    pytest.param(dict(reuse_handles=True, kernel=False), id="reference-reuse"),
]


@pytest.mark.parametrize("mode", ENV_MODES[1:])
def test_all_loop_modes_produce_identical_traces(mode) -> None:
    reference = _mixed_workload(Environment())
    assert _mixed_workload(Environment(**mode)) == reference


def test_env_var_disables_kernel(monkeypatch) -> None:
    monkeypatch.setenv("REPRO_SIM_KERNEL", "0")
    env = Environment()
    assert not env._kernel
    monkeypatch.setenv("REPRO_SIM_KERNEL", "1")
    assert Environment()._kernel


def test_live_counter_exact_after_kernel_run() -> None:
    for mode in (dict(), dict(reuse_handles=True)):
        env = Environment(**mode)
        _mixed_workload(env)
        assert env._live == 0


def test_reuse_recycles_one_handle_per_process() -> None:
    env = Environment(reuse_handles=True)
    store = Store(env)
    ids: list[int] = []

    def worker():
        for k in range(4):
            ev = store.get()
            ids.append(id(ev))
            item = yield ev
            assert item == k
            t = env.timeout(0.5)
            ids.append(id(t))
            yield t

    def feeder():
        for k in range(4):
            store.put(k)
            yield env.timeout(1.0)

    env.process(worker())
    env.process(feeder())
    env.run()
    # the first get() runs during the URGENT bootstrap turn (outside the
    # fused NORMAL batch) and allocates fresh; every later factory event
    # the worker awaited is the same recycled handle object
    assert len(set(ids[1:])) == 1
    assert len(set(ids)) <= 2


def test_reuse_handle_carries_the_shared_name() -> None:
    env = Environment(reuse_handles=True)
    captured: list = []

    def worker():
        yield env.timeout(1.0)  # bootstrap turn: allocated fresh
        ev = env.timeout(1.0)   # fused turn: the recycled handle
        captured.append(ev)
        yield ev

    env.process(worker())
    env.run()
    assert captured[0].name is HANDLE_NAME


def test_user_event_named_like_a_handle_is_not_mistaken() -> None:
    # HANDLE_NAME is deliberately not the interned literal: a user event
    # carrying the same *text* must still dispatch via the generic branch
    env = Environment(reuse_handles=True)
    fired: list = []
    ev = Event(env, name="proc.handle")
    assert ev.name is not HANDLE_NAME
    ev.add_callback(lambda e: fired.append(e.value))
    ev.succeed("ok")
    env.run()
    assert fired == ["ok"]


def test_reuse_condition_over_factory_events() -> None:
    # one factory call per turn recycles the handle; the second allocates
    # fresh — the condition must still collect both values correctly
    env = Environment(reuse_handles=True)
    out: list = []
    store = Store(env)

    def worker():
        got = yield env.all_of([store.get(), env.timeout(2.0, "t")])
        out.append(sorted(map(str, got.values())))

    def feeder():
        yield env.timeout(1.0)
        store.put("item")

    env.process(worker())
    env.process(feeder())
    env.run()
    assert out == [[sorted(["item", "t"])[0], sorted(["item", "t"])[1]]]


def test_reuse_interrupt_while_parked_then_stale_fire() -> None:
    # the parked handle stays in the store queue after the interrupt; when
    # put() finally fires it the kernel must drop it (owner moved on) —
    # matching the reference loop's dead-process check
    env = Environment(reuse_handles=True)
    out: list = []
    store = Store(env)

    def victim():
        try:
            yield store.get()
            out.append("resumed")  # pragma: no cover - must not happen
        except ProcessKilled:
            out.append("killed")
            yield env.timeout(5.0)
            out.append("continued")

    def killer(proc):
        yield env.timeout(1.0)
        proc.interrupt()
        yield env.timeout(1.0)
        store.put("stale")

    p = env.process(victim())
    env.process(killer(p))
    env.run()
    assert out == ["killed", "continued"]


def test_reuse_cancelled_handle_is_never_recycled() -> None:
    env = Environment(reuse_handles=True)
    seen: list = []

    def worker():
        yield env.timeout(0.5)  # leave the bootstrap turn (fresh events)
        doomed = env.timeout(3.0)  # the recycled handle
        assert doomed.name is HANDLE_NAME
        assert env.cancel(doomed)
        nxt = env.timeout(1.0)
        assert nxt is not doomed  # cancelled handle is permanently retired
        yield nxt
        later = env.timeout(1.0)
        assert later is not doomed
        yield later
        seen.append(env.now)

    env.process(worker())
    env.run()
    assert seen == [2.5]


def test_reuse_failure_surfacing_matches_reference() -> None:
    def scenario(env):
        def worker():
            yield env.timeout(1.0)
            raise ValueError("unhandled")
        env.process(worker())
        with pytest.raises(ValueError, match="unhandled"):
            env.run()
        return env.now

    assert (scenario(Environment(reuse_handles=True))
            == scenario(Environment(kernel=False)))


def _canon(result) -> bytes:
    return json.dumps(dataclasses.asdict(result), sort_keys=True,
                      default=repr).encode()


def test_fig2_fig8_tables_byte_identical_kernel_on_off(monkeypatch) -> None:
    """The flagship tables must not change when the kernel is disabled."""
    from repro.bench.experiments import (fig2_stencil_fits_in_hbm,
                                         fig8_stencil_speedup)

    monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
    fig2_on = _canon(fig2_stencil_fits_in_hbm())
    fig8_on = _canon(fig8_stencil_speedup())
    monkeypatch.setenv("REPRO_SIM_KERNEL", "0")
    assert _canon(fig2_stencil_fits_in_hbm()) == fig2_on
    assert _canon(fig8_stencil_speedup()) == fig8_on
