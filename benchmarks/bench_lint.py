"""bwlint performance + cleanliness guard (``BENCH_lint.json``).

Two things are on the hook here:

* **Wall-clock** — ``repro lint`` runs in CI on every push, so the full
  static pass (REP1xx + model checker + the REP3xx dataflow/traffic
  analysis) over the whole tree must stay interactive.  The analysis is
  pure AST walking with memoized config-field evaluation; the ceilings
  below carry ~10x headroom over the measured ~0.9s / ~0.1s so only a
  complexity regression (e.g. an accidentally quadratic fixpoint) trips
  them, not machine noise.
* **Zero false positives** — the REP300-306 acceptance bar.  A findings
  count > 0 on the repo's own sources is a rule regression, caught here
  with the offending renders in the assertion message.

The recorded trajectory (wall times, file/site counts, guidance
identity) lands in ``BENCH_lint.json`` next to the other bench files.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.regression import best_wall_time, write_bench
from repro.lint.guidance import build_guidance
from repro.lint.static_checker import check_paths, iter_python_files

ROOT = Path(__file__).resolve().parents[1]
LINT_TARGETS = [ROOT / "src" / "repro", ROOT / "examples"]
APPS = ROOT / "src" / "repro" / "apps"

#: generous ceilings (measured ~0.9s and ~0.1s): complexity guards,
#: not machine benchmarks
FULL_LINT_CEILING_S = 10.0
GUIDANCE_CEILING_S = 2.0


def test_lint_regression() -> None:
    """Record BENCH_lint.json; assert wall ceilings and zero findings."""
    n_files = len(list(iter_python_files(LINT_TARGETS)))
    lint_wall, report = best_wall_time(
        lambda: check_paths(LINT_TARGETS), repeats=2)
    guide_wall, guidance = best_wall_time(
        lambda: build_guidance([APPS]), repeats=2)

    assert report.findings == [], [f.render() for f in report.findings]
    assert lint_wall < FULL_LINT_CEILING_S
    assert guide_wall < GUIDANCE_CEILING_S
    assert len(guidance.sites) > 0
    # the v2 phase pass (interprocedural summaries + segmentation) rides
    # inside build_guidance: its cost is inside GUIDANCE_CEILING_S, and
    # the apps tree must keep segmenting into a non-empty timeline
    phases = guidance.phase_table()
    assert phases, "apps tree produced no phase timeline"
    sites_with_interval = sum(
        1 for s in guidance.sites if guidance.first_phase(s) is not None)
    assert sites_with_interval > 0

    metrics = {
        "full_tree": {
            "wall_s": lint_wall,
            "files": n_files,
            "findings": len(report.findings),
            "files_per_s": n_files / lint_wall if lint_wall else 0.0,
        },
        "guidance_apps": {
            "wall_s": guide_wall,
            "sites": len(guidance.sites),
        },
        "phase_analysis": {
            "phases": len(phases),
            "sites_with_interval": sites_with_interval,
            "schema": guidance.schema,
        },
    }
    path = write_bench("lint", metrics)
    print(f"\nwrote {path}")
    print(f"  full_tree: {n_files} files in {lint_wall*1e3:.0f}ms, "
          f"{len(report.findings)} findings")
    print(f"  guidance_apps: {len(guidance.sites)} sites in "
          f"{guide_wall*1e3:.0f}ms, identity {guidance.identity()[:12]}")
