"""Span-tracer overhead guard (opt-in: ``pytest benchmarks/bench_obs.py``).

The repro.obs hook sites (entry-method deliver, strategy fetch/evict,
queue-lock charges) cost a single module-global ``is not None`` test
when no collector is installed — the same zero-cost-when-disabled
contract the metrics and race slots honor.  This bench quantifies both
sides on the same hook-heavy workload as ``bench_metrics.py`` — a
Stencil3D run under multi-io, where the IO threads fetch and evict
continuously:

* ``baseline`` — obs hooks present but empty (the default everywhere);
* ``disabled`` — a second identical run; the ratio to ``baseline``
  bounds the cost of the dormant hook sites plus machine noise;
* ``enabled``  — a full :class:`~repro.obs.SpanTracer` on both hook
  slots (span DAG + causal edge bookkeeping), plus a critical-path walk
  of the result (the walk rides along so the bench also guards the
  profiler's cost staying linear-ish in span count).

The disabled bound is the ISSUE's acceptance bar: spans must cost
nothing measurable when off.  The enabled bound is loose — building a
causal DAG per task/fetch/evict is real work — but still fails loudly
on an accidentally quadratic structure.
"""

from __future__ import annotations

import time

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.bench.regression import write_bench
from repro.core.api import OOCRuntimeBuilder
from repro.obs import SpanTracer, critical_path
from repro.units import GiB, MiB

#: the ISSUE's acceptance bar for the dormant hook sites
DISABLED_BOUND = 1.05
#: loose bound for full span collection + the critical-path walk
ENABLED_BOUND = 2.0
NOISE_EPSILON = 0.05


def run_stencil(with_spans: bool) -> dict[str, float] | None:
    built = OOCRuntimeBuilder("multi-io", cores=16,
                              mcdram_capacity=256 * MiB,
                              ddr_capacity=2 * GiB, trace=False).build()
    tracer = SpanTracer(built.env).install() if with_spans else None
    try:
        cfg = StencilConfig(total_bytes=GiB, block_bytes=16 * MiB,
                            iterations=3)
        Stencil3D(built, cfg).run()
    finally:
        if tracer is not None:
            tracer.uninstall()
    if tracer is None:
        return None
    report = critical_path(tracer.spans)
    return {"spans": float(len(tracer)),
            "path_steps": float(len(report.steps)),
            "makespan_s": report.makespan,
            "compute_share": report.share("compute"),
            "fetch_share": report.share("fetch")}


def _timed(with_spans: bool) -> tuple[float, dict[str, float] | None]:
    t0 = time.perf_counter()
    result = run_stencil(with_spans)
    return time.perf_counter() - t0, result


def test_span_overhead_is_bounded() -> None:
    # interleave the three measurements so machine noise (CPU frequency,
    # neighbours on shared runners) hits all of them alike, then compare
    # best-of mins — two *identical* disabled series bound the noise floor
    run_stencil(False), run_stencil(True)  # warm caches / imports
    baseline, disabled, enabled = [], [], []
    run_info: dict[str, float] | None = None
    for _ in range(4):
        baseline.append(_timed(False)[0])
        disabled.append(_timed(False)[0])
        on_s, run_info = _timed(True)
        enabled.append(on_s)
    baseline_s, disabled_s, enabled_s = (min(baseline), min(disabled),
                                         min(enabled))
    disabled_x = disabled_s / baseline_s
    enabled_x = enabled_s / baseline_s
    print(f"\nspans baseline: {baseline_s * 1e3:.1f}ms   "
          f"disabled: {disabled_s * 1e3:.1f}ms ({disabled_x:.2f}x)   "
          f"enabled: {enabled_s * 1e3:.1f}ms ({enabled_x:.2f}x)")
    assert run_info, "enabled run produced no spans"
    assert run_info["spans"] > 0
    assert run_info["path_steps"] > 0
    # the decomposition must stay conservative on the bench workload too
    assert 0.0 <= run_info["compute_share"] <= 1.0
    assert disabled_x <= DISABLED_BOUND + NOISE_EPSILON
    assert enabled_x <= ENABLED_BOUND + NOISE_EPSILON
    write_bench("obs", {
        "stencil_1gib_multi_io": {
            "baseline_s": baseline_s,
            "disabled_s": disabled_s,
            "enabled_s": enabled_s,
            "disabled_x": disabled_x,
            "enabled_x": enabled_x,
            **{f"run_{k}": v for k, v in run_info.items()},
        },
    })
