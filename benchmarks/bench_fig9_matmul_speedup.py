"""Figure 9 — MatMul speedup from data movement, vs the Naive baseline.

Paper shape (total WS 24/36/54 GB, reduced WS held ~constant by the
decomposition):

* DDR4-only well below 1;
* the prefetch strategies are comparable to each other ("Single IO thread
  performs as well as Multiple IO threads, due to high data reuse of
  read-only data blocks") and their advantage over Naive *grows* with the
  total working set (more of Naive's shared panels spill to DDR4).

Model caveat (see EXPERIMENTS.md): panel residency is what protects the
single-IO thread; once A+B no longer fits in HBM its serial memcpy pipe
becomes a real bottleneck, so at the largest size the single-IO bar may
trail the parallel-fetch strategies in our reproduction.
"""

from repro.bench.experiments import fig9_matmul_speedup
from repro.bench.harness import Scale
from repro.bench.report import render_experiment


def test_fig9_matmul_speedup(benchmark, scale):
    # MatMul's chare count grows ~linearly with capacity (G^2 with
    # G = N/b and N ~ sqrt(WS)); at SMALL scale the 54 GB point is ~16k
    # chares and minutes of wall time, so the default drops to TINY.
    if scale is Scale.SMALL:
        scale = Scale.TINY
    elif scale is Scale.FULL:
        scale = Scale.MEDIUM
    result = benchmark.pedantic(
        fig9_matmul_speedup,
        kwargs={"scale": scale},
        rounds=1, iterations=1)
    print("\n" + render_experiment(result))

    labels = list(result.series)          # "24GB", "36GB", "54GB"
    first, last = result.series[labels[0]], result.series[labels[-1]]

    for ws, row in result.series.items():
        assert row["DDR4only"] < 0.8, f"{ws}: DDR4-only should lose clearly"
        # no prefetch strategy collapses below Naive by much: the reuse
        # machinery keeps shared panels resident for all of them
        assert row["Single IO thread"] > 0.7
        assert row["No IO thread"] > 0.9

    # the paper's headline: the prefetch advantage over Naive grows with
    # the total working set, reaching ~2x
    assert last["Multiple IO threads"] > first["Multiple IO threads"]
    assert last["Multiple IO threads"] > 1.8

    # single-IO exceeds parity once panels spill in Naive (the read-only
    # reuse effect that lets one memcpy thread keep up)
    assert result.series[labels[1]]["Single IO thread"] > 1.0

    # at the fits-in-HBM end the strategies are comparable (paper claim);
    # at the largest size our model diverges (documented in EXPERIMENTS.md)
    m0, n0 = first["Multiple IO threads"], first["No IO thread"]
    assert abs(n0 - m0) / m0 < 0.2, (
        f"{labels[0]}: no-IO {n0:.2f} vs multi-IO {m0:.2f} diverge")
