"""Figure 7 — memcpy cost for data migration under 64-thread stress.

Paper claims: migration cost grows with the data size moved; "memcpy costs
for HBM to DDR4 [are] slightly higher" than DDR4 to HBM (the DDR4 write
port is the weaker link).
"""

import pytest

from repro.bench.experiments import fig7_memcpy_cost
from repro.bench.report import render_experiment


def test_fig7_memcpy_cost(benchmark, scale):
    result = benchmark.pedantic(fig7_memcpy_cost,
                                kwargs={"scale": scale},
                                rounds=1, iterations=1)
    print("\n" + render_experiment(result))

    labels = list(result.series)
    d2h = [result.series[l]["ddr-to-hbm"] for l in labels]
    h2d = [result.series[l]["hbm-to-ddr"] for l in labels]

    # cost grows monotonically with the amount moved
    assert d2h == sorted(d2h)
    assert h2d == sorted(h2d)
    # HBM -> DDR4 is slightly costlier at every size
    for a, b, l in zip(d2h, h2d, labels):
        assert b > a, f"{l}: HBM->DDR ({b:.4f}s) not above DDR->HBM ({a:.4f}s)"
        assert b / a == pytest.approx(90 / 80, rel=0.15)  # port ratio
