"""Metrics overhead guard (opt-in: ``pytest benchmarks/bench_metrics.py``).

The repro.metrics hook sites (DataMover move/migrate, allocator failure
paths, OOCManager end_inflight, strategy fetch/evict) cost a single
module-global ``is not None`` test when no registry is installed.  This
bench quantifies both sides on the same hook-heavy workload as
``bench_sanitizer.py`` — a Stencil3D run under multi-io, where the IO
threads fetch and evict continuously:

* ``baseline`` — metrics hooks present but empty (the default everywhere);
* ``disabled`` — a second identical run; the ratio to ``baseline`` bounds
  the cost of the dormant hook sites plus machine noise;
* ``enabled``  — a full :class:`~repro.metrics.MetricsSession` (registry +
  polled-gauge bindings + flight recorder at 50ms sim cadence).

A digest of the enabled run's registry is embedded in the
``BENCH_metrics.json`` record, so the perf trajectory carries the traffic
context (bytes moved, fetch p95) alongside wall-time.  Deliberately NOT
part of ``BENCH_simcore.json`` — the sim-core baselines must not absorb
metrics noise.
"""

from __future__ import annotations

import time

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.bench.regression import write_bench
from repro.core.api import OOCRuntimeBuilder
from repro.metrics import MetricsSession, digest
from repro.units import GiB, MiB

#: loose tolerances — wall-clock asserts on shared machines need headroom,
#: but a pathological regression (accidentally doing work in the disabled
#: path, or an O(n) structure in the enabled one) still fails loudly
DISABLED_BOUND = 1.05
ENABLED_BOUND = 1.3
NOISE_EPSILON = 0.05


def run_stencil(with_metrics: bool) -> dict[str, float] | None:
    built = OOCRuntimeBuilder("multi-io", cores=16,
                              mcdram_capacity=256 * MiB,
                              ddr_capacity=2 * GiB, trace=False).build()
    session = MetricsSession(built, app="stencil", cadence=0.05) \
        if with_metrics else None
    try:
        cfg = StencilConfig(total_bytes=GiB, block_bytes=16 * MiB,
                            iterations=3)
        Stencil3D(built, cfg).run()
    finally:
        if session is not None:
            session.finish()
    return digest(session.registry) if session is not None else None


def _timed(with_metrics: bool) -> tuple[float, dict[str, float] | None]:
    t0 = time.perf_counter()
    result = run_stencil(with_metrics)
    return time.perf_counter() - t0, result


def test_metrics_overhead_is_bounded() -> None:
    # interleave the three measurements so machine noise (CPU frequency,
    # neighbours on shared runners) hits all of them alike, then compare
    # best-of mins — two *identical* disabled series bound the noise floor
    run_stencil(False), run_stencil(True)  # warm caches / imports
    baseline, disabled, enabled = [], [], []
    run_digest: dict[str, float] | None = None
    for _ in range(4):
        baseline.append(_timed(False)[0])
        disabled.append(_timed(False)[0])
        on_s, run_digest = _timed(True)
        enabled.append(on_s)
    baseline_s, disabled_s, enabled_s = (min(baseline), min(disabled),
                                         min(enabled))
    disabled_x = disabled_s / baseline_s
    enabled_x = enabled_s / baseline_s
    print(f"\nmetrics baseline: {baseline_s * 1e3:.1f}ms   "
          f"disabled: {disabled_s * 1e3:.1f}ms ({disabled_x:.2f}x)   "
          f"enabled: {enabled_s * 1e3:.1f}ms ({enabled_x:.2f}x)")
    assert run_digest, "enabled run produced an empty digest"
    assert run_digest.get("repro_moved_bytes_total", 0) > 0
    assert disabled_x <= DISABLED_BOUND + NOISE_EPSILON
    assert enabled_x <= ENABLED_BOUND + NOISE_EPSILON
    write_bench("metrics", {
        "stencil_1gib_multi_io": {
            "baseline_s": baseline_s,
            "disabled_s": disabled_s,
            "enabled_s": enabled_s,
            "disabled_x": disabled_x,
            "enabled_x": enabled_x,
        },
    }, metrics_digest=run_digest)
