"""Figure 1 — STREAM bandwidth comparison, DDR4 vs MCDRAM.

Paper claim: "MCDRAM has over 4X higher bandwidth than DRAM" across the
four STREAM kernels on 64 threads.
"""

from repro.bench.experiments import fig1_stream_bandwidth
from repro.bench.report import render_experiment


def test_fig1_stream_bandwidth(benchmark):
    result = benchmark.pedantic(fig1_stream_bandwidth, rounds=1, iterations=1)
    print("\n" + render_experiment(result))

    for kernel, row in result.series.items():
        ratio = row["mcdram"] / row["ddr4"]
        # the paper's headline: >4x on every kernel
        assert ratio > 4.0, f"{kernel}: MCDRAM/DDR4 ratio {ratio:.2f} <= 4"
        # sanity: bandwidths in a plausible KNL range (GB/s)
        assert 60 < row["ddr4"] < 120
        assert 300 < row["mcdram"] < 520


def test_fig1_single_thread_cannot_saturate(benchmark):
    """Secondary observation: one core cannot extract full MCDRAM bandwidth
    (this is what makes the per-PE contention model meaningful)."""
    result = benchmark.pedantic(fig1_stream_bandwidth,
                                kwargs={"threads": 1},
                                rounds=1, iterations=1)
    for row in result.series.values():
        assert row["mcdram"] < 20  # GB/s; capped by per-core bandwidth
