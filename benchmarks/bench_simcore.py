"""Simulation-core microbenchmark: incremental/vectorized vs full solver.

Measures wall-clock of the event core + fluid model on two scenarios and
records the trajectory in ``BENCH_simcore.json`` (see
:mod:`repro.bench.regression`):

* ``contention_64pe`` — 64 PEs, each with a private read/write port pair,
  several flows per PE, all starting at the same instant wave after wave.
  This is the shape of a 64-core streaming phase (Stencil3D halo exchange,
  STREAM itself).  The incremental solver batches each wave's arrivals into
  one solve and re-solves only the finished flow's two-link component per
  departure, where the full solver re-solves all 64 PEs every time.
* ``shared_link_movers`` — 64 concurrent movers crossing the *same* two
  ports (the Figure 7 memcpy pile-up).  One connected component, so the
  gain here is same-instant batching only; this bounds the worst case.
* ``event_churn`` — no fluid model at all: 64 store/resource worker loops
  hammering ``Store.get``/``Resource.request``/``env.timeout``.  This is
  the pure event-core hot path the ``__slots__`` + constant-event-name
  micro-opt pass targets; the recorded ``ops_per_s`` is the before/after
  number quoted in EXPERIMENTS.md.

Both fluid scenarios assert the two solvers agree on the simulated
timeline — this file runs in the default test path, so the perf harness
cannot rot.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.regression import best_wall_time, write_bench
from repro.sim.environment import Environment
from repro.sim.fluid import FluidNetwork
from repro.sim.resources import Resource, Store

#: scenario shape: a 64-PE machine, a few flows per PE lane
PES = 64
FLOWS_PER_PE = 3
WAVES = 4
#: per-lane port bandwidths (B/s) and per-flow cap, loosely KNL-shaped
READ_BW = 100e9
WRITE_BW = 80e9
FLOW_CAP = 12e9
BASE_BYTES = 256e6


def run_contention(solver: str, *, pes: int = PES,
                   flows_per_pe: int = FLOWS_PER_PE,
                   waves: int = WAVES) -> tuple[float, int]:
    """64 private lanes, synchronized waves of flow arrivals.

    Returns (simulated end time, number of solver invocations).
    """
    env = Environment()
    net = FluidNetwork(env, solver=solver)
    lanes = [(net.add_link(f"pe{i}.read", READ_BW),
              net.add_link(f"pe{i}.write", WRITE_BW))
             for i in range(pes)]
    for _wave in range(waves):
        dones = []
        for i, (read_link, write_link) in enumerate(lanes):
            for j in range(flows_per_pe):
                # distinct sizes => staggered departures, each a rate change
                nbytes = BASE_BYTES * (1.0 + ((i * flows_per_pe + j) % 7) / 7.0)
                flow = net.start_flow(nbytes, [read_link, write_link],
                                      max_rate=FLOW_CAP)
                dones.append(flow.done)
        env.run(env.all_of(dones))
    return env.now, net.solves


def run_shared_link_movers(solver: str, *, movers: int = PES,
                           waves: int = WAVES) -> tuple[float, int]:
    """64 concurrent flows across one shared port pair (Figure 7 shape)."""
    env = Environment()
    net = FluidNetwork(env, solver=solver)
    src_read = net.add_link("ddr4.read", 80e9)
    dst_write = net.add_link("mcdram.write", 170e9)
    for _wave in range(waves):
        dones = []
        for k in range(movers):
            nbytes = BASE_BYTES * (1.0 + (k % 5) / 5.0)
            flow = net.start_flow(nbytes, [src_read, dst_write],
                                  max_rate=FLOW_CAP)
            dones.append(flow.done)
        env.run(env.all_of(dones))
    return env.now, net.solves


def run_event_churn(*, pes: int = PES, rounds: int = 150) -> tuple[float, int]:
    """Store/Resource/Timeout churn with no fluid flows (pure event core).

    Each of ``pes`` workers loops: blocking ``get`` from its store, a
    counted-resource acquire/release, and a tiny timeout — the per-message
    skeleton of the runtime's PE loop.  Returns (simulated end time,
    total worker iterations).
    """
    env = Environment()
    stores = [Store(env, name=f"q{i}") for i in range(pes)]
    res = Resource(env, capacity=32, name="slots")

    def worker(store: Store):
        # bound methods hoisted out of the loop, same as the runtime's own
        # PE loops — the scenario measures the event core, not LOAD_ATTR
        get, request = store.get, res.request
        timeout, release = env.timeout, res.release
        while True:
            item = yield get()
            if item is None:
                return
            yield request()
            yield timeout(1e-6)
            release()

    def feeder():
        puts = [store.put for store in stores]
        timeout = env.timeout
        for r in range(rounds):
            for put in puts:
                put(r)
            yield timeout(1e-5)
        for put in puts:
            put(None)

    for store in stores:
        env.process(worker(store), name=f"w.{store.name}")
    env.process(feeder(), name="feeder")
    env.run()
    return env.now, rounds * pes


def _measure(run_fn, solver: str) -> dict:
    elapsed, (sim_time, solves) = best_wall_time(
        lambda: run_fn(solver), repeats=2)
    return {"wall_s": elapsed, "sim_time_s": sim_time, "solves": solves}


#: raised floors (this PR's event-core batching + inlining pass): the
#: contention ratio is machine-independent; the churn floor is absolute
#: but carries >2x headroom over the measured ~430k ops/s — the PR 5
#: baseline recorded ~143k on the same class of machine
CONTENTION_FLOOR = 3.0
EVENT_CHURN_FLOOR_OPS = 200e3


def test_simcore_regression() -> None:
    """Record BENCH_simcore.json; assert the raised contention/churn floors."""
    metrics: dict[str, dict[str, float]] = {}

    full = _measure(run_contention, "full")
    inc = _measure(run_contention, "incremental")
    vec = _measure(run_contention, "vectorized")
    # identical simulated timelines (same final instant); the vectorized
    # kernel must match the scalar incremental one *exactly*, not approx
    assert inc["sim_time_s"] == pytest.approx(full["sim_time_s"], rel=1e-9)
    assert vec["sim_time_s"] == inc["sim_time_s"]
    assert vec["solves"] == inc["solves"]
    contention_speedup = full["wall_s"] / inc["wall_s"]
    metrics["contention_64pe"] = {
        "full_s": full["wall_s"], "incremental_s": inc["wall_s"],
        "vectorized_s": vec["wall_s"],
        "speedup": contention_speedup,
        "full_solves": full["solves"], "incremental_solves": inc["solves"],
        "sim_time_s": inc["sim_time_s"],
    }

    full = _measure(run_shared_link_movers, "full")
    inc = _measure(run_shared_link_movers, "incremental")
    assert inc["sim_time_s"] == pytest.approx(full["sim_time_s"], rel=1e-9)
    metrics["shared_link_movers"] = {
        "full_s": full["wall_s"], "incremental_s": inc["wall_s"],
        "speedup": full["wall_s"] / inc["wall_s"],
        "full_solves": full["solves"], "incremental_solves": inc["solves"],
        "sim_time_s": inc["sim_time_s"],
    }

    # best-of-7: the ~25ms scenario is short enough that scheduler noise
    # dominates a 2-repeat best; the floor below still has 2x headroom
    churn_elapsed, (churn_sim, churn_ops) = best_wall_time(
        run_event_churn, repeats=7)
    churn_ops_per_s = churn_ops / churn_elapsed
    metrics["event_churn"] = {
        "wall_s": churn_elapsed,
        "ops": churn_ops,
        "ops_per_s": churn_ops_per_s,
        "sim_time_s": churn_sim,
    }

    path = write_bench("simcore", metrics)
    print(f"\nwrote {path}")
    for scenario, row in metrics.items():
        if "speedup" in row:
            print(f"  {scenario}: full {row['full_s']*1e3:.1f}ms "
                  f"-> incremental {row['incremental_s']*1e3:.1f}ms "
                  f"({row['speedup']:.1f}x; solves "
                  f"{row['full_solves']} -> {row['incremental_solves']})")
        else:
            print(f"  {scenario}: {row['wall_s']*1e3:.1f}ms "
                  f"({row['ops_per_s']/1e3:.0f}k ops/s)")

    assert contention_speedup >= CONTENTION_FLOOR, (
        f"incremental solver only {contention_speedup:.2f}x faster on the "
        f"64-PE contention scenario (wanted >={CONTENTION_FLOOR}x)")
    assert churn_ops_per_s >= EVENT_CHURN_FLOOR_OPS, (
        f"event churn at {churn_ops_per_s / 1e3:.0f}k ops/s, below the "
        f"{EVENT_CHURN_FLOOR_OPS / 1e3:.0f}k floor (PR 5 recorded ~143k; "
        "the batched drain loop should clear 400k on the same machine)")


def test_solvers_agree_on_solve_counts() -> None:
    """The incremental solver must do strictly less solving work."""
    _, full_solves = run_contention("full", pes=8, flows_per_pe=2, waves=2)
    _, inc_solves = run_contention("incremental", pes=8, flows_per_pe=2,
                                   waves=2)
    assert inc_solves < full_solves


if __name__ == "__main__":  # pragma: no cover - manual run convenience
    import sys
    for name, fn in (("contention_64pe", run_contention),
                     ("shared_link_movers", run_shared_link_movers)):
        f = _measure(fn, "full")
        i = _measure(fn, "incremental")
        v = _measure(fn, "vectorized")
        print(f"{name}: full {f['wall_s']:.3f}s incremental "
              f"{i['wall_s']:.3f}s ({f['wall_s']/i['wall_s']:.1f}x) "
              f"vectorized {v['wall_s']:.3f}s",
              file=sys.stderr)
