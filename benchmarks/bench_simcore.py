"""Simulation-core microbenchmark: incremental/vectorized vs full solver.

Measures wall-clock of the event core + fluid model on two scenarios and
records the trajectory in ``BENCH_simcore.json`` (see
:mod:`repro.bench.regression`):

* ``contention_64pe`` — 64 PEs, each with a private read/write port pair,
  several flows per PE, all starting at the same instant wave after wave.
  This is the shape of a 64-core streaming phase (Stencil3D halo exchange,
  STREAM itself).  The incremental solver batches each wave's arrivals into
  one solve and re-solves only the finished flow's two-link component per
  departure, where the full solver re-solves all 64 PEs every time.
* ``shared_link_movers`` — 64 concurrent movers crossing the *same* two
  ports (the Figure 7 memcpy pile-up).  One connected component, so the
  gain here is same-instant batching only; this bounds the worst case.
* ``event_churn`` — no fluid model at all: 64 store/resource worker loops
  hammering ``Store.get``/``Resource.request``/``env.timeout``.  This is
  the pure event-core hot path the fused kernel loop + handle-reuse pass
  targets; the recorded ``ops_per_s`` is the before/after number quoted
  in EXPERIMENTS.md.
* ``steady_phases`` — one phase configuration repeated ten times over a
  shared port pair.  The flow-set-signature memo replays the cached rate
  vectors for every phase after the first; the recorded speedup is
  memo-off wall over memo-on wall on the identical timeline.

Both fluid scenarios assert the two solvers agree on the simulated
timeline — this file runs in the default test path, so the perf harness
cannot rot.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.regression import best_wall_time, write_bench
from repro.sim.environment import Environment
from repro.sim.fluid import FluidNetwork
from repro.sim.resources import Resource, Store

#: scenario shape: a 64-PE machine, a few flows per PE lane
PES = 64
FLOWS_PER_PE = 3
WAVES = 4
#: per-lane port bandwidths (B/s) and per-flow cap, loosely KNL-shaped
READ_BW = 100e9
WRITE_BW = 80e9
FLOW_CAP = 12e9
BASE_BYTES = 256e6


def run_contention(solver: str, *, pes: int = PES,
                   flows_per_pe: int = FLOWS_PER_PE,
                   waves: int = WAVES) -> tuple[float, FluidNetwork]:
    """64 private lanes, synchronized waves of flow arrivals.

    Returns (simulated end time, the network with its solve counters).
    """
    env = Environment()
    net = FluidNetwork(env, solver=solver)
    lanes = [(net.add_link(f"pe{i}.read", READ_BW),
              net.add_link(f"pe{i}.write", WRITE_BW))
             for i in range(pes)]
    for _wave in range(waves):
        dones = []
        for i, (read_link, write_link) in enumerate(lanes):
            for j in range(flows_per_pe):
                # distinct sizes => staggered departures, each a rate change
                nbytes = BASE_BYTES * (1.0 + ((i * flows_per_pe + j) % 7) / 7.0)
                flow = net.start_flow(nbytes, [read_link, write_link],
                                      max_rate=FLOW_CAP)
                dones.append(flow.done)
        env.run(env.all_of(dones))
    return env.now, net


def run_shared_link_movers(solver: str, *, movers: int = PES,
                           waves: int = WAVES) -> tuple[float, FluidNetwork]:
    """64 concurrent flows across one shared port pair (Figure 7 shape)."""
    env = Environment()
    net = FluidNetwork(env, solver=solver)
    src_read = net.add_link("ddr4.read", 80e9)
    dst_write = net.add_link("mcdram.write", 170e9)
    for _wave in range(waves):
        dones = []
        for k in range(movers):
            nbytes = BASE_BYTES * (1.0 + (k % 5) / 5.0)
            flow = net.start_flow(nbytes, [src_read, dst_write],
                                  max_rate=FLOW_CAP)
            dones.append(flow.done)
        env.run(env.all_of(dones))
    return env.now, net


def run_steady_phases(*, memo: bool, lanes: int = 48, phases: int = 10,
                      sizes: int = 6) -> tuple[float, FluidNetwork]:
    """Steady-state re-solve: one phase configuration repeated verbatim.

    ``lanes`` flows with a small alphabet of (size, cap) combinations all
    start at once over one shared port pair, then drain in staggered
    departure waves — each wave a component re-solve.  Every later phase
    repeats the exact flow-set-signature sequence of the first, so the
    memo replays all of it; memo-off recomputes every solve.
    """
    env = Environment()
    net = FluidNetwork(env, solver="incremental", memo=memo)
    read = net.add_link("hbm.read", 400e9)
    write = net.add_link("ddr4.write", WRITE_BW)
    share = WRITE_BW / lanes
    for _phase in range(phases):
        dones = []
        for k in range(lanes):
            nbytes = BASE_BYTES * (1.0 + (k % sizes) / sizes)
            # per-flow caps straddle the fair share: the capped flows
            # freeze one cascade round at a time, making each solve
            # genuinely progressive (the case the memo is for)
            cap = share * (0.4 + 1.6 * k / lanes)
            flow = net.start_flow(nbytes, [read, write], max_rate=cap)
            dones.append(flow.done)
        env.run(env.all_of(dones))
    return env.now, net


def run_event_churn(*, pes: int = PES, rounds: int = 150) -> tuple[float, int]:
    """Store/Resource/Timeout churn with no fluid flows (pure event core).

    Each of ``pes`` workers loops: blocking ``get`` from its store, a
    counted-resource acquire/release, and a tiny timeout — the per-message
    skeleton of the runtime's PE loop.  ``reuse_handles=True`` matches the
    runtime's own environment configuration: each worker's awaited events
    are recycled through its private handle instead of allocated fresh.
    Returns (simulated end time, total worker iterations).
    """
    env = Environment(reuse_handles=True)
    stores = [Store(env, name=f"q{i}") for i in range(pes)]
    res = Resource(env, capacity=32, name="slots")

    def worker(store: Store):
        # bound methods hoisted out of the loop, same as the runtime's own
        # PE loops — the scenario measures the event core, not LOAD_ATTR
        get, request = store.get, res.request
        timeout, release = env.timeout, res.release
        while True:
            item = yield get()
            if item is None:
                return
            yield request()
            yield timeout(1e-6)
            release()

    def feeder():
        puts = [store.put for store in stores]
        timeout = env.timeout
        for r in range(rounds):
            for put in puts:
                put(r)
            yield timeout(1e-5)
        for put in puts:
            put(None)

    for store in stores:
        env.process(worker(store), name=f"w.{store.name}")
    env.process(feeder(), name="feeder")
    env.run()
    return env.now, rounds * pes


def _measure(run_fn, solver: str) -> dict:
    elapsed, (sim_time, net) = best_wall_time(
        lambda: run_fn(solver), repeats=2)
    return {"wall_s": elapsed, "sim_time_s": sim_time, "solves": net.solves,
            "solve_wall_s": net.solve_wall_s,
            "memo_hits": net.memo_hits, "memo_misses": net.memo_misses}


#: raised floors (this PR's fused kernel loop + handle reuse + solver
#: memo): the contention and steady-phase ratios are machine-independent;
#: the churn floor is absolute but carries ~2x headroom over the measured
#: ~940k ops/s — PR 9 recorded ~444k, PR 5 ~143k on this machine class
CONTENTION_FLOOR = 3.0
EVENT_CHURN_FLOOR_OPS = 500e3
STEADY_MEMO_FLOOR = 1.5


def test_simcore_regression() -> None:
    """Record BENCH_simcore.json; assert the raised contention/churn floors."""
    metrics: dict[str, dict[str, float]] = {}

    full = _measure(run_contention, "full")
    inc = _measure(run_contention, "incremental")
    vec = _measure(run_contention, "vectorized")
    # identical simulated timelines (same final instant); the vectorized
    # kernel must match the scalar incremental one *exactly*, not approx
    assert inc["sim_time_s"] == pytest.approx(full["sim_time_s"], rel=1e-9)
    assert vec["sim_time_s"] == inc["sim_time_s"]
    assert vec["solves"] == inc["solves"]
    contention_speedup = full["wall_s"] / inc["wall_s"]
    metrics["contention_64pe"] = {
        "full_s": full["wall_s"], "incremental_s": inc["wall_s"],
        "vectorized_s": vec["wall_s"],
        "speedup": contention_speedup,
        "full_solves": full["solves"], "incremental_solves": inc["solves"],
        "sim_time_s": inc["sim_time_s"],
    }

    full = _measure(run_shared_link_movers, "full")
    inc = _measure(run_shared_link_movers, "incremental")
    assert inc["sim_time_s"] == pytest.approx(full["sim_time_s"], rel=1e-9)
    metrics["shared_link_movers"] = {
        "full_s": full["wall_s"], "incremental_s": inc["wall_s"],
        "speedup": full["wall_s"] / inc["wall_s"],
        "full_solves": full["solves"], "incremental_solves": inc["solves"],
        "sim_time_s": inc["sim_time_s"],
    }

    on_elapsed, (on_sim, on_net) = best_wall_time(
        lambda: run_steady_phases(memo=True), repeats=2)
    off_elapsed, (off_sim, off_net) = best_wall_time(
        lambda: run_steady_phases(memo=False), repeats=2)
    # the memo must not change the simulated timeline, only the wall cost
    assert on_sim == off_sim
    assert on_net.memo_hits > 0 and off_net.memo_hits == 0
    steady_speedup = off_elapsed / on_elapsed
    metrics["steady_phases"] = {
        "memo_on_s": on_elapsed, "memo_off_s": off_elapsed,
        "speedup": steady_speedup,
        "solves_memo_on": on_net.solves, "solves_memo_off": off_net.solves,
        "memo_hits": on_net.memo_hits, "memo_misses": on_net.memo_misses,
        "sim_time_s": on_sim,
    }

    # best-of-7: the ~25ms scenario is short enough that scheduler noise
    # dominates a 2-repeat best; the floor below still has 2x headroom
    churn_elapsed, (churn_sim, churn_ops) = best_wall_time(
        run_event_churn, repeats=15)
    churn_ops_per_s = churn_ops / churn_elapsed
    metrics["event_churn"] = {
        "wall_s": churn_elapsed,
        "ops": churn_ops,
        "ops_per_s": churn_ops_per_s,
        "sim_time_s": churn_sim,
    }

    path = write_bench("simcore", metrics)
    print(f"\nwrote {path}")
    for scenario, row in metrics.items():
        if "full_s" in row:
            print(f"  {scenario}: full {row['full_s']*1e3:.1f}ms "
                  f"-> incremental {row['incremental_s']*1e3:.1f}ms "
                  f"({row['speedup']:.1f}x; solves "
                  f"{row['full_solves']} -> {row['incremental_solves']})")
        elif "memo_on_s" in row:
            print(f"  {scenario}: memo off {row['memo_off_s']*1e3:.1f}ms "
                  f"-> on {row['memo_on_s']*1e3:.1f}ms "
                  f"({row['speedup']:.1f}x; solves "
                  f"{row['solves_memo_off']} -> {row['solves_memo_on']}, "
                  f"{row['memo_hits']} hits)")
        else:
            print(f"  {scenario}: {row['wall_s']*1e3:.1f}ms "
                  f"({row['ops_per_s']/1e3:.0f}k ops/s)")

    assert contention_speedup >= CONTENTION_FLOOR, (
        f"incremental solver only {contention_speedup:.2f}x faster on the "
        f"64-PE contention scenario (wanted >={CONTENTION_FLOOR}x)")
    assert churn_ops_per_s >= EVENT_CHURN_FLOOR_OPS, (
        f"event churn at {churn_ops_per_s / 1e3:.0f}k ops/s, below the "
        f"{EVENT_CHURN_FLOOR_OPS / 1e3:.0f}k floor (PR 9 recorded ~444k; "
        "the fused kernel + handle reuse should clear 900k here)")
    assert steady_speedup >= STEADY_MEMO_FLOOR, (
        f"solver memo only {steady_speedup:.2f}x faster on the repeated-"
        f"phase scenario (wanted >={STEADY_MEMO_FLOOR}x)")


def test_solvers_agree_on_solve_counts() -> None:
    """The incremental solver must do strictly less solving work."""
    _, full_net = run_contention("full", pes=8, flows_per_pe=2, waves=2)
    _, inc_net = run_contention("incremental", pes=8, flows_per_pe=2,
                                waves=2)
    assert inc_net.solves < full_net.solves


if __name__ == "__main__":  # pragma: no cover - manual run convenience
    import sys
    for name, fn in (("contention_64pe", run_contention),
                     ("shared_link_movers", run_shared_link_movers)):
        f = _measure(fn, "full")
        i = _measure(fn, "incremental")
        v = _measure(fn, "vectorized")
        print(f"{name}: full {f['wall_s']:.3f}s incremental "
              f"{i['wall_s']:.3f}s ({f['wall_s']/i['wall_s']:.1f}x) "
              f"vectorized {v['wall_s']:.3f}s",
              file=sys.stderr)
    on_w, (_, on_net) = best_wall_time(
        lambda: run_steady_phases(memo=True), repeats=2)
    off_w, _ = best_wall_time(
        lambda: run_steady_phases(memo=False), repeats=2)
    print(f"steady_phases: memo-off {off_w:.3f}s memo-on {on_w:.3f}s "
          f"({off_w/on_w:.1f}x, {on_net.memo_hits} hits)", file=sys.stderr)
    churn_w, (_, churn_ops) = best_wall_time(run_event_churn, repeats=5)
    print(f"event_churn: {churn_w*1e3:.1f}ms for {churn_ops} ops "
          f"({churn_ops/churn_w/1e3:.0f}k ops/s)", file=sys.stderr)
