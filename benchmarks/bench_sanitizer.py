"""Sanitizer overhead guard (opt-in: ``pytest benchmarks/bench_sanitizer.py``).

The repro.lint hook sites in the hot paths (DataBlock retain/release,
PagedAllocator take/give-back, DataMover move, kernel access) are a single
module-global ``is not None`` test when no sanitizer is installed.  This
bench quantifies both sides on a hook-heavy workload — a Stencil3D run
under multi-io, where every task retains/releases its dependences and the
IO threads fetch/evict continuously:

* ``off``  — hooks present but no observer (the default everywhere);
* ``on``   — a recording :class:`~repro.lint.sanitizer.SimSanitizer`.

Results are informational (printed); the only assertion is a loose sanity
bound so a pathological slowdown fails loudly.  Deliberately NOT part of
``BENCH_simcore.json`` — the sim-core baselines track the fluid solver and
must not absorb sanitizer noise.
"""

from __future__ import annotations

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.bench.regression import best_wall_time
from repro.core.api import OOCRuntimeBuilder
from repro.lint import SimSanitizer
from repro.units import GiB, MiB


def run_stencil(sanitize: bool) -> int:
    built = OOCRuntimeBuilder("multi-io", cores=16,
                              mcdram_capacity=256 * MiB,
                              ddr_capacity=2 * GiB, trace=False).build()
    sanitizer = SimSanitizer(mode="record").install(built.manager) \
        if sanitize else None
    try:
        cfg = StencilConfig(total_bytes=GiB, block_bytes=16 * MiB,
                            iterations=3)
        Stencil3D(built, cfg).run()
        if sanitizer is not None:
            assert built.manager.check_quiescent() == 0
            assert not sanitizer.violations
            return sanitizer.events_observed
        return 0
    finally:
        if sanitizer is not None:
            sanitizer.uninstall()


def test_sanitizer_overhead_is_bounded() -> None:
    off_s, _ = best_wall_time(lambda: run_stencil(False), repeats=2)
    on_s, events = best_wall_time(lambda: run_stencil(True), repeats=2)
    overhead = on_s / off_s
    print(f"\nsanitizer off: {off_s * 1e3:.1f}ms   "
          f"on: {on_s * 1e3:.1f}ms   overhead: {overhead:.2f}x   "
          f"({events} hook events)")
    assert events > 0
    # loose guard: per-event work is O(1) attribute checks, so the whole
    # run must stay within small-multiple territory even on noisy machines
    assert overhead < 3.0
