"""Extension — NVM+DRAM tiering (the paper's conclusion).

"Benefits were shown on a heterogeneous memory architecture where memory
nodes differ in their bandwidth.  Architectures with heterogeneity in both
latency and bandwidth would benefit even more.  We plan to extend this
implementation to other heterogeneous memory architectures."

The strategies are tier-agnostic (they talk to NUMA nodes 0/1), so
pointing the runtime at an Optane-class NVM (slow in bandwidth *and*
latency) + DRAM node requires zero new scheduling code.  This bench checks
the conclusion's prediction: the multi-IO speedup over Naive is larger on
NVM+DRAM than on the KNL configuration with the same capacity ratios.
"""

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.config import nvm_dram_config
from repro.core.api import OOCRuntimeBuilder
from repro.units import GiB, MiB

FAST = 1 * GiB            # fast-tier capacity (scaled)
SLOW = 6 * GiB
TOTAL = 2 * GiB           # 2x over-subscription of the fast tier
BLOCK = 4 * MiB


def _speedup(machine_config=None):
    times = {}
    for strategy in ("naive", "multi-io"):
        if machine_config is not None:
            built = OOCRuntimeBuilder(strategy, trace=False,
                                      machine_config=machine_config).build()
        else:
            built = OOCRuntimeBuilder(strategy, cores=64,
                                      mcdram_capacity=FAST,
                                      ddr_capacity=SLOW, trace=False).build()
        cfg = StencilConfig(total_bytes=TOTAL, block_bytes=BLOCK,
                            iterations=3)
        times[strategy] = Stencil3D(built, cfg).run().total_time
    return times["naive"] / times["multi-io"]


def test_extension_nvm_dram_benefits_more(benchmark):
    knl_speedup = _speedup()
    nvm_speedup = benchmark.pedantic(
        _speedup,
        args=(nvm_dram_config(cores=64, dram_capacity=FAST,
                              nvm_capacity=SLOW),),
        rounds=1, iterations=1)
    print(f"\nKNL (bandwidth-only gap):   multi-io speedup {knl_speedup:.2f}x")
    print(f"NVM+DRAM (bw + latency gap): multi-io speedup {nvm_speedup:.2f}x")
    # the conclusion's prediction
    assert nvm_speedup > knl_speedup
    assert nvm_speedup > 2.0
