"""Figure 5 — Projections: wait time, single vs multiple IO threads.

Paper claim: "single IO thread has a lot more overhead (red) than multiple
IO threads case" on out-of-core Stencil3D.
"""

from repro.bench.experiments import fig5_projections_wait
from repro.bench.report import render_experiment


def test_fig5_projections_wait(benchmark, scale):
    result = benchmark.pedantic(fig5_projections_wait,
                                kwargs={"scale": scale},
                                rounds=1, iterations=1)
    print("\n" + render_experiment(result))

    wait = result.series["wait fraction"]
    util = result.series["utilization"]
    single, multi = wait["Single IO thread"], wait["Multiple IO threads"]
    # the 'red portion' dominates with a single IO thread
    assert single > 2 * multi, (
        f"single-IO wait {single:.2%} not >> multi-IO wait {multi:.2%}")
    assert single > 0.5
    assert util["Multiple IO threads"] > util["Single IO thread"]
