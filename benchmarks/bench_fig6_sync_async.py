"""Figure 6 — synchronous vs asynchronous data fetch.

Paper claim: "the preprocessing time before compute kernels which is of
order of 20 ms is removed from asynchronous scheduling" — the no-IO-thread
strategy charges a visible per-task fetch to the worker, the multi-IO
strategy hides it.
"""

from repro.bench.experiments import fig6_sync_vs_async
from repro.bench.report import render_experiment


def test_fig6_sync_vs_async(benchmark, scale):
    result = benchmark.pedantic(fig6_sync_vs_async,
                                kwargs={"scale": scale},
                                rounds=1, iterations=1)
    print("\n" + render_experiment(result))

    per_task = result.series["preprocess per task"]
    sync = per_task["Synchronous (no IO thread)"]
    async_ = per_task["Asynchronous (multi IO threads)"]
    # synchronous pre-processing is visible per task...
    assert sync > 1e-4, f"sync preprocess {sync * 1e3:.3f} ms/task too small"
    # ...and the asynchronous strategy removes (hides) it from the worker
    assert async_ == 0.0
