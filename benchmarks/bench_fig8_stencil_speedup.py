"""Figure 8 — Stencil3D speedup from data movement, vs the Naive baseline.

Paper shape (total WS 32 GB, reduced WS 2/4/8 GB, 20 iterations):

* DDR4-only lands below 1 (HBM matters);
* Single IO thread is *significantly slower than Naive* ("it fetches data
  for at least one chare per PE, for all PEs, before scheduling");
* No IO thread improves on Naive;
* Multiple IO threads is best, up to ~2x.
"""

from repro.bench.experiments import fig8_stencil_speedup
from repro.bench.report import render_experiment


def test_fig8_stencil_speedup(benchmark, scale):
    result = benchmark.pedantic(fig8_stencil_speedup,
                                kwargs={"scale": scale, "iterations": 5},
                                rounds=1, iterations=1)
    print("\n" + render_experiment(result))

    for rws, row in result.series.items():
        assert row["DDR4only"] < 1.0, f"{rws}: DDR4-only should lose to Naive"
        assert row["Single IO thread"] < 1.0, (
            f"{rws}: single IO thread must be slower than Naive")
        assert row["No IO thread"] > 1.2, f"{rws}: no-IO should beat Naive"
        assert row["Multiple IO threads"] > 1.5, (
            f"{rws}: multi-IO should approach ~2x")
        # strategy ordering of the paper's bars
        assert (row["Multiple IO threads"] > row["Single IO thread"])
        assert (row["No IO thread"] > row["Single IO thread"])
