"""Leaderboard sweep wall-clock guard (opt-in: ``pytest benchmarks/``).

``repro leaderboard`` is the PR's cash-in surface: the kernelized sim
core + solver memo are what make an 8-strategy × 4-app replicated sweep
cheap enough to run casually.  This bench runs the full square at
``Scale.TINY`` (one replicate, serial, uncached — every cell is a real
simulation) and guards the wall clock with a ceiling, so a regression
in the event core or the solver shows up here as a slow sweep even if
the per-scenario floors in ``bench_simcore`` drift.

Records ``BENCH_leaderboard.json`` with the sweep wall time and cell
throughput; ``leaderboard.tiny_sweep.cells_per_s`` feeds the
``repro trend`` dashboard.
"""

from __future__ import annotations

import time

from repro.bench.harness import Scale
from repro.bench.leaderboard import leaderboard_plans, rank_figures
from repro.bench.regression import write_bench
from repro.exec import run_specs
from repro.obs.report import assemble_sweep, replicate_specs

#: generous ceiling for 32 tiny cells on one noisy core — the sweep
#: takes ~2s here; tripping this means an order-of-magnitude regression
WALL_CEILING_S = 20.0
REPLICATES = 1


def test_leaderboard_sweep_under_ceiling() -> None:
    plans = leaderboard_plans(Scale.TINY, iterations=2)
    specs = replicate_specs(plans, REPLICATES)
    t0 = time.perf_counter()
    results = run_specs(specs, jobs=1, cache=None)
    wall = time.perf_counter() - t0
    assert all(r.ok for r in results), [r.error for r in results]

    figures = assemble_sweep(plans, REPLICATES,
                             [r.result for r in results])
    summary = rank_figures(figures)
    scores = {label: row["slowdown"].mean
              for label, row in summary.stats.items()}
    # sanity on the fold, not on strategy quality: slowdown is measured
    # against the per-app best, so nothing can score below 1x, and the
    # DDR-only placement can never win a bandwidth-bound leaderboard
    assert all(score >= 1.0 - 1e-12 for score in scores.values()), scores
    assert next(iter(summary.stats)) != "ddr-only", scores

    cells = len(specs)
    print(f"\nleaderboard: {cells} cells in {wall * 1e3:.0f}ms "
          f"({cells / wall:.1f} cells/s); "
          f"worst geomean {max(scores.values()):.2f}x ({max(scores, key=scores.get)})")
    assert wall <= WALL_CEILING_S, (
        f"tiny leaderboard sweep took {wall:.1f}s "
        f"(ceiling {WALL_CEILING_S}s) — sim core or solver regression?")

    write_bench("leaderboard", {
        "tiny_sweep": {
            "cells": float(cells),
            "wall_s": wall,
            "cells_per_s": cells / wall,
            "worst_geomean_x": max(scores.values()),
        },
    })
