"""racesan overhead guard (opt-in: ``pytest benchmarks/bench_race.py``).

The repro.race hook sites sit on the hottest sim-core paths there are —
``Environment.schedule``/``step``, ``Process._resume``, the buffered
``Store``/``PriorityStore`` handoffs and the PE wait queues — so the
disabled cost matters more here than for any other subsystem.  Each site
is a single module-global ``is not None`` test when no tracker is
installed.  Measured on the same hook-heavy Stencil3D/multi-io workload
as ``bench_metrics.py``:

* ``baseline`` — race hooks present but empty (the default everywhere);
* ``disabled`` — a second identical run; the ratio to ``baseline`` bounds
  the dormant hook-site cost plus machine noise (ISSUE acceptance:
  <= 1.05x);
* ``enabled``  — a full :class:`~repro.race.RaceSanitizer` (vector clocks
  per actor, per-block access records, stack capture off to measure the
  algorithmic cost, not the traceback module).

Deliberately NOT part of ``BENCH_simcore.json`` — the sim-core baselines
must not absorb race-detector noise.
"""

from __future__ import annotations

import time

from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.bench.regression import write_bench
from repro.core.api import OOCRuntimeBuilder
from repro.sim.environment import Environment
from repro.units import GiB, MiB

#: dormant hook sites must be free; the ISSUE pins the disabled ratio
DISABLED_BOUND = 1.05
#: full vector-clock tracking may cost real work, but bounded work
ENABLED_BOUND = 2.5
NOISE_EPSILON = 0.05


def run_stencil(with_race: bool) -> dict[str, int] | None:
    env = Environment()
    racesan = None
    if with_race:
        from repro.race import RaceSanitizer
        racesan = RaceSanitizer(stacks=False).install(env)
    try:
        built = OOCRuntimeBuilder("multi-io", cores=16,
                                  mcdram_capacity=256 * MiB,
                                  ddr_capacity=2 * GiB,
                                  trace=False).build_into(env)
        cfg = StencilConfig(total_bytes=GiB, block_bytes=16 * MiB,
                            iterations=3)
        Stencil3D(built, cfg).run()
    finally:
        if racesan is not None:
            racesan.uninstall()
    if racesan is None:
        return None
    assert not racesan.findings, racesan.render_report()
    return {"events": racesan.events_observed,
            "accesses": racesan.accesses_observed}


def _timed(with_race: bool) -> tuple[float, dict[str, int] | None]:
    t0 = time.perf_counter()
    result = run_stencil(with_race)
    return time.perf_counter() - t0, result


def test_race_overhead_is_bounded() -> None:
    # interleave the measurements so machine noise hits all series alike,
    # then compare best-of mins — two *identical* disabled series bound
    # the noise floor
    run_stencil(False), run_stencil(True)  # warm caches / imports
    baseline, disabled, enabled = [], [], []
    observed: dict[str, int] | None = None
    for _ in range(4):
        baseline.append(_timed(False)[0])
        disabled.append(_timed(False)[0])
        on_s, observed = _timed(True)
        enabled.append(on_s)
    baseline_s, disabled_s, enabled_s = (min(baseline), min(disabled),
                                         min(enabled))
    disabled_x = disabled_s / baseline_s
    enabled_x = enabled_s / baseline_s
    print(f"\nracesan baseline: {baseline_s * 1e3:.1f}ms   "
          f"disabled: {disabled_s * 1e3:.1f}ms ({disabled_x:.2f}x)   "
          f"enabled: {enabled_s * 1e3:.1f}ms ({enabled_x:.2f}x)")
    assert observed is not None
    assert observed["events"] > 0 and observed["accesses"] > 0
    assert disabled_x <= DISABLED_BOUND + NOISE_EPSILON
    assert enabled_x <= ENABLED_BOUND + NOISE_EPSILON
    write_bench("race", {
        "stencil_1gib_multi_io": {
            "baseline_s": baseline_s,
            "disabled_s": disabled_s,
            "enabled_s": enabled_s,
            "disabled_x": disabled_x,
            "enabled_x": enabled_x,
            "events_observed": float(observed["events"]),
            "accesses_observed": float(observed["accesses"]),
        },
    })
