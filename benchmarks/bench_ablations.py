"""Ablation benches for the design choices DESIGN.md calls out.

1. **Pool allocator** (§IV-C future work): "the creating of space in
   destination memory could be avoided if we maintain a memory pool" —
   measure migration with FreeList vs Pool allocators.
2. **memcpy vs migrate_pages** (§IV-C, citing Perarnau et al.): memcpy is
   the more scalable mechanism.
3. **Eviction policy**: the paper's own-blocks rule vs demand-only LRU on
   a reuse-heavy workload.
4. **Node-level run queue** (§IV-B planned improvement) on Stencil3D.
5. **Cluster mode**: All-to-All (the paper's pick "has the most impact on
   memory bandwidth") vs Quadrant.
"""

import pytest

from repro.apps.matmul import MatMul, MatMulConfig
from repro.apps.stencil3d import Stencil3D, StencilConfig
from repro.config import ClusterMode
from repro.core.api import OOCRuntimeBuilder
from repro.core.eviction import LRUEviction, OwnBlocksEviction
from repro.machine.knl import build_knl
from repro.mem.allocator import FreeListAllocator, PoolAllocator
from repro.mem.block import DataBlock
from repro.sim.environment import Environment
from repro.units import GiB, MiB


def _migrate_many(allocator_cls, *, use_migrate_pages=False, blocks=64,
                  nbytes=8 * MiB):
    env = Environment()
    node = build_knl(env, mcdram_capacity=GiB, ddr_capacity=8 * GiB,
                     allocator_cls=allocator_cls)
    total = 0.0
    for round_ in range(3):
        items = []
        for i in range(blocks):
            block = DataBlock(f"r{round_}b{i}", nbytes)
            node.registry.register(block)
            node.topology.place_block(block, node.ddr)
            items.append(block)
        start = env.now
        move = (node.mover.move_migrate_pages if use_migrate_pages
                else node.mover.move)
        procs = [env.process(move(b, node.hbm)) for b in items]
        env.run(until=env.all_of(procs))
        total += env.now - start
        for block in items:
            node.topology.release_block(block)
            node.registry.unregister(block)
    return total


def test_ablation_pool_allocator_reduces_alloc_cost(benchmark):
    """Paper §IV-C: pooling removes the numa_alloc_onnode cost on reuse."""
    t_freelist = _migrate_many(FreeListAllocator)
    t_pool = benchmark.pedantic(_migrate_many, args=(PoolAllocator,),
                                rounds=1, iterations=1)
    print(f"\nfreelist={t_freelist:.6f}s pool={t_pool:.6f}s "
          f"saving={(1 - t_pool / t_freelist):.2%}")
    assert t_pool < t_freelist


def test_ablation_memcpy_beats_migrate_pages(benchmark):
    """Paper §IV-C, citing [11]: memcpy is the more scalable mechanism."""
    t_memcpy = _migrate_many(FreeListAllocator)
    t_migrate = benchmark.pedantic(
        _migrate_many, args=(FreeListAllocator,),
        kwargs={"use_migrate_pages": True}, rounds=1, iterations=1)
    print(f"\nmemcpy={t_memcpy:.6f}s migrate_pages={t_migrate:.6f}s")
    assert t_memcpy < t_migrate


def _matmul_time(eviction):
    built = OOCRuntimeBuilder(
        "multi-io", cores=64, mcdram_capacity=GiB, ddr_capacity=6 * GiB,
        eviction=eviction, trace=False).build()
    cfg = MatMulConfig.for_working_set(int(2.25 * GiB), block_dim=96)
    app = MatMul(built, cfg)
    return app.run().total_time


def test_ablation_eviction_policy_on_reuse_workload(benchmark):
    """Own-blocks (paper) vs LRU-on-demand under panel reuse: demand-only
    eviction never does useless eager work, so it must not lose."""
    t_own = _matmul_time(OwnBlocksEviction())
    t_lru = benchmark.pedantic(_matmul_time, args=(LRUEviction(),),
                               rounds=1, iterations=1)
    print(f"\nown-blocks={t_own:.4f}s lru={t_lru:.4f}s")
    assert t_lru < t_own * 1.25


def _stencil_time(node_level):
    built = OOCRuntimeBuilder(
        "multi-io", cores=64, mcdram_capacity=GiB, ddr_capacity=6 * GiB,
        node_level_run_queue=node_level, trace=False).build()
    cfg = StencilConfig(total_bytes=2 * GiB, block_bytes=4 * MiB,
                        iterations=3)
    app = Stencil3D(built, cfg)
    return app.run().total_time


def test_ablation_node_level_run_queue(benchmark):
    """§IV-B: 'Another mechanism to mitigate load imbalance could be by
    using a node-level run queue.'  It must not hurt, and usually helps."""
    t_per_pe = _stencil_time(False)
    t_node = benchmark.pedantic(_stencil_time, args=(True,),
                                rounds=1, iterations=1)
    print(f"\nper-PE runq={t_per_pe:.4f}s node-level runq={t_node:.4f}s")
    assert t_node < t_per_pe * 1.15


def test_ablation_cluster_mode(benchmark):
    """Quadrant mode's shorter mesh routes give slightly better bandwidth;
    the paper picked All-to-All as the most bandwidth-stressed mode."""

    def run(mode):
        built = OOCRuntimeBuilder(
            "multi-io", cores=64, mcdram_capacity=GiB, ddr_capacity=6 * GiB,
            cluster_mode=mode, trace=False).build()
        cfg = StencilConfig(total_bytes=2 * GiB, block_bytes=4 * MiB,
                            iterations=3)
        return Stencil3D(built, cfg).run().total_time

    t_a2a = run(ClusterMode.ALL_TO_ALL)
    t_quad = benchmark.pedantic(run, args=(ClusterMode.QUADRANT,),
                                rounds=1, iterations=1)
    print(f"\nall-to-all={t_a2a:.4f}s quadrant={t_quad:.4f}s")
    assert t_quad < t_a2a


def _spmv_fit_speedup(eviction):
    """DDR4-only time over multi-IO time on a fitting iterated SpMV."""
    from repro.apps.spmv import SpMV, SpMVConfig

    cfg = SpMVConfig(block_rows=48, block_bytes=4 * MiB, iterations=8)
    times = {}
    for strategy, policy in (("ddr-only", None), ("multi-io", eviction)):
        built = OOCRuntimeBuilder(
            strategy, cores=32, mcdram_capacity=256 * MiB,
            ddr_capacity=4 * GiB, eviction=policy, trace=False).build()
        times[strategy] = SpMV(built, cfg).run().total_time
    return times["ddr-only"] / times["multi-io"]


def test_ablation_eager_eviction_wastes_iterative_reuse(benchmark):
    """On an iterative workload that fits in HBM, the paper's eager
    own-blocks policy discards blocks between iterations (speedup ~1x);
    demand-only LRU keeps them resident and wins ~2x."""
    own = _spmv_fit_speedup(OwnBlocksEviction())
    lru = benchmark.pedantic(_spmv_fit_speedup, args=(LRUEviction(),),
                             rounds=1, iterations=1)
    print(f"\nfitting SpMV speedup vs ddr-only: own-blocks={own:.2f}x "
          f"lru={lru:.2f}x")
    assert lru > 1.5
    assert lru > own * 1.5
