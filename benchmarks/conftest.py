"""Shared fixtures for the per-figure benchmarks.

Each ``bench_fig*.py`` regenerates one figure of the paper's evaluation
section via :mod:`repro.bench.experiments`, asserts the paper's *shape*
claims (who wins, roughly by how much), and prints the regenerated series
so ``pytest benchmarks/ --benchmark-only -s`` reproduces the tables in
EXPERIMENTS.md.
"""

import pytest

from repro.bench.harness import Scale


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale", default="small",
        choices=["small", "medium", "full"],
        help="capacity scale for experiments (small=1/16, medium=1/4, "
             "full=the paper's literal sizes; full takes hours)")


@pytest.fixture(scope="session")
def scale(request):
    return {
        "small": Scale.SMALL,
        "medium": Scale.MEDIUM,
        "full": Scale.FULL,
    }[request.config.getoption("--repro-scale")]
