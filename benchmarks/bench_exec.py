"""Exec-engine speedup guard (opt-in: ``pytest benchmarks/bench_exec.py``).

Measures the PR's two acceptance ratios on a real figure workload
(the Figure 2 stencil plan at ``Scale.TINY``) and records them in
``BENCH_exec.json``:

* ``warm_cache_x`` — serial uncached wall clock over warm-cache wall
  clock for the same specs.  A warm sweep is pure disk reads, so the
  ISSUE's >= 10x floor holds on any machine; asserted unconditionally.
* ``parallel_x`` — serial over ``-j <cores>`` cold wall clock.  The
  >= 3x floor only exists with cores to spare, so it is asserted when
  the host has >= 4 CPUs; on smaller boxes the measured ratio and the
  core count are still recorded (with a sanity floor: the pool must not
  be catastrophically slower than serial).  When the lane is skipped or
  the floor is not asserted, an explicit ``*_skipped_reason`` field in
  the JSON says why — a single-core host must be distinguishable from a
  lane that silently failed to run.
* ``cache_overhead_x`` — cold *cached* over cold uncached serial runs:
  the price of fingerprinting + atomic writes on a cache-miss sweep.

The equivalence property (identical tables whatever ``--jobs`` is) is
asserted in ``tests/test_exec_engine.py``; this file only guards speed.
"""

from __future__ import annotations

import os
import time

from repro.bench.experiments import fig2_plan
from repro.bench.harness import Scale
from repro.bench.regression import write_bench
from repro.exec.cache import ResultCache
from repro.exec.engine import Engine

#: acceptance floors from the ISSUE
WARM_CACHE_BOUND = 10.0
PARALLEL_BOUND = 3.0
#: a cold cached sweep may pay for hashing + writes, but not much more
CACHE_OVERHEAD_BOUND = 1.25
NOISE_EPSILON = 0.05
#: cores needed before the parallel floor is meaningful
PARALLEL_MIN_CORES = 4
REPEATS = 3


def _specs():
    # enough work per spec that pool dispatch overhead cannot dominate,
    # small enough that the bench stays in seconds
    return fig2_plan(Scale.TINY, iterations=3).specs


def _timed(engine: Engine) -> float:
    specs = _specs()
    t0 = time.perf_counter()
    results = engine.run(specs)
    elapsed = time.perf_counter() - t0
    assert all(r.ok for r in results), [r.error for r in results]
    return elapsed


def test_exec_engine_speedups(tmp_path) -> None:
    cores = os.cpu_count() or 1
    jobs = min(cores, len(_specs()))
    fingerprint = "b" * 64

    _timed(Engine(jobs=1))  # warm imports before any timing
    serial, cold_cached, warm, parallel = [], [], [], []
    for rep in range(REPEATS):
        serial.append(_timed(Engine(jobs=1)))
        # fresh generation per repeat => every cached run is a true cold
        cold_root = tmp_path / f"cold{rep}"
        cold_cached.append(_timed(Engine(jobs=1, cache=ResultCache(
            root=cold_root, fingerprint=fingerprint))))
        warm.append(_timed(Engine(jobs=1, cache=ResultCache(
            root=cold_root, fingerprint=fingerprint))))
        if cores > 1:
            parallel.append(_timed(Engine(jobs=jobs)))

    serial_s, warm_s = min(serial), min(warm)
    cold_cached_s = min(cold_cached)
    warm_cache_x = serial_s / warm_s
    cache_overhead_x = cold_cached_s / serial_s
    parallel_s = min(parallel) if parallel else None
    parallel_x = serial_s / parallel_s if parallel_s else None

    print(f"\nexec engine: serial {serial_s * 1e3:.1f}ms   "
          f"warm cache {warm_s * 1e3:.1f}ms ({warm_cache_x:.0f}x)   "
          f"cold cached {cold_cached_s * 1e3:.1f}ms "
          f"({cache_overhead_x:.2f}x)   "
          + (f"parallel -j{jobs} {parallel_s * 1e3:.1f}ms "
             f"({parallel_x:.2f}x)" if parallel_s else
             f"parallel: skipped ({cores} core(s))"))

    assert warm_cache_x >= WARM_CACHE_BOUND, (
        f"warm cache only {warm_cache_x:.1f}x over serial "
        f"(wanted >= {WARM_CACHE_BOUND}x)")
    assert cache_overhead_x <= CACHE_OVERHEAD_BOUND + NOISE_EPSILON, (
        f"cold cached sweep {cache_overhead_x:.2f}x serial "
        f"(wanted <= {CACHE_OVERHEAD_BOUND}x)")
    if parallel_x is not None:
        if cores >= PARALLEL_MIN_CORES:
            assert parallel_x >= PARALLEL_BOUND, (
                f"-j{jobs} only {parallel_x:.2f}x over serial on "
                f"{cores} cores (wanted >= {PARALLEL_BOUND}x)")
        else:
            assert parallel_x >= 0.4, (
                f"-j{jobs} catastrophically slower than serial "
                f"({parallel_x:.2f}x)")

    metrics: dict[str, dict[str, float]] = {
        "fig2_tiny_sweep": {
            "cores": float(cores),
            "jobs": float(jobs),
            "serial_s": serial_s,
            "warm_cache_s": warm_s,
            "cold_cached_s": cold_cached_s,
            "warm_cache_x": warm_cache_x,
            "cache_overhead_x": cache_overhead_x,
        },
    }
    if parallel_s is not None:
        metrics["fig2_tiny_sweep"]["parallel_s"] = parallel_s
        metrics["fig2_tiny_sweep"]["parallel_x"] = parallel_x
        if cores < PARALLEL_MIN_CORES:
            # measured, but the >= 3x floor was not asserted
            metrics["fig2_tiny_sweep"]["parallel_floor_skipped_reason"] = (
                f"host has {cores} core(s) < {PARALLEL_MIN_CORES}; "
                "ratio recorded, floor not asserted")
    else:
        # the lane never ran: say so explicitly instead of leaving the
        # keys silently absent (a single-core host is the common cause)
        metrics["fig2_tiny_sweep"]["parallel_skipped_reason"] = (
            f"host has {cores} core(s); pool lane needs > 1")
    write_bench("exec", metrics)
