"""Figure 2 — Stencil3D on HBM vs DDR4 when the working set fits in HBM.

Paper claim: "the performance on HBM is 3X higher than on DDR4, when the
working set fits within HBM" — measured on compute-kernel time.  Our
fluid model yields the STREAM bandwidth ratio (~4.7x) for fully
memory-bound kernels; the assertion window accepts the 3-5x band and
EXPERIMENTS.md discusses the difference.
"""

from repro.bench.experiments import fig2_stencil_fits_in_hbm
from repro.bench.report import render_experiment


def test_fig2_stencil_fits_in_hbm(benchmark, scale):
    result = benchmark.pedantic(fig2_stencil_fits_in_hbm,
                                kwargs={"scale": scale},
                                rounds=1, iterations=1)
    print("\n" + render_experiment(result))

    kernel = result.series["compute kernel time"]
    total = result.series["total time"]
    ratio = kernel["DDR4"] / kernel["HBM"]
    # the paper's Figure 2 shape: HBM several times faster
    assert 2.5 < ratio < 5.5, f"kernel-time ratio {ratio:.2f} out of band"
    # total time shows the same ordering
    assert total["DDR4"] > total["HBM"]
    assert result.notes["kernel_slowdown_on_ddr4"] == round(ratio, 2)
